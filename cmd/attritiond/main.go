// Command attritiond is attrition-as-a-service: a long-running HTTP
// daemon that ingests live receipt batches into the sharded streaming
// monitor, answers per-customer stability queries, and streams defection
// alerts — the production deployment shape of the paper's model.
//
//	attritiond -addr :8080 -origin 2012-05 -state mon.smn
//
// Endpoints (see API.md for the full reference):
//
//	POST /v1/receipts                     batched ingestion (bounded queue)
//	GET  /v1/customers/{id}/stability     last scored stability
//	POST /v1/stability:batch              batch stability queries (NDJSON)
//	GET  /v1/alerts                       long-poll or SSE alert stream
//	GET  /healthz                         liveness (degraded detail rides along)
//	GET  /readyz                          readiness (503 when degraded)
//	GET  /metrics                         counters + per-endpoint latency
//
// The ingestion queue is bounded; -policy picks what happens when it
// fills: block (producers stall), shed (drop and count), or reject
// (429 + Retry-After). With -state, the daemon restores the monitor
// snapshot on start, saves it every -save-interval, and persists it
// atomically on SIGINT/SIGTERM after draining the queue — windows past
// the watermark stay open, so a restart resumes losslessly and the alert
// stream across restarts is byte-identical to an uninterrupted run.
//
// With -follow, the daemon tails a growing STB1 snapshot as its ingest
// source instead of HTTP (surviving compaction of the tailed file by
// resyncing), and with -journal it keeps its own crash-safe STB1 receipt
// journal, self-compacted every -compact-interval. See the README runbook
// and DESIGN.md "Self-healing maintenance".
//
// -pprof ADDR starts net/http/pprof on a separate listener (never the
// public mux) for live CPU/heap capture; see the README profiling
// runbook.
//
// Scored output is wall-clock free: alerts and snapshots are a pure
// function of the accepted receipt sequence, so the daemon's results are
// reproducible by replaying the same receipts through `attrition
// monitor` (the differential tests in internal/serve pin this).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/gautrais/stability"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "attritiond:", err)
		os.Exit(1)
	}
}

// config carries the parsed flag set.
type config struct {
	addr string
	// pprofAddr, when non-empty, binds a second, debug-only listener
	// serving net/http/pprof. Opt-in and separate from the public address
	// so profiling endpoints are never exposed where receipts arrive.
	pprofAddr string
	serve     stability.ServerConfig
	// http.Server bounds. WriteTimeout is deliberately absent: a global
	// write timeout would kill long-lived SSE streams, so response writes
	// are bounded per request (serve.Config.WriteDeadline) instead.
	readTimeout       time.Duration
	readHeaderTimeout time.Duration
	idleTimeout       time.Duration
}

// parseFlags builds the server configuration from the command line.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("attritiond", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		pprofAddr    = fs.String("pprof", "", "debug listen address for net/http/pprof (e.g. localhost:6060); empty disables profiling endpoints")
		origin       = fs.String("origin", "2012-05", "window grid origin month (YYYY-MM); must match the receipt stream's first month")
		span         = fs.Int("span", 2, "window span in months")
		alpha        = fs.Float64("alpha", 2, "significance base α")
		beta         = fs.Float64("beta", 0.6, "loyalty threshold: alert at stability <= beta")
		topJ         = fs.Int("top", 3, "blamed products per alert")
		warmup       = fs.Int("warmup", 4, "windows of history before alerts may fire")
		shards       = fs.Int("shards", 0, "ingestion shards (customer-hash partitions); 0 = GOMAXPROCS")
		queue        = fs.Int("queue", 64, "ingestion queue bound, in batches")
		policy       = fs.String("policy", "block", "queue overflow policy: block, shed or reject (429)")
		maxBatch     = fs.Int("max-batch", 10000, "receipts per POST limit (413 beyond)")
		alertBuffer  = fs.Int("alert-buffer", 65536, "alerts retained for late consumers")
		state        = fs.String("state", "", "SMN1 snapshot path: restore on start, save periodically and on shutdown")
		saveInterval = fs.Duration("save-interval", time.Minute, "background snapshot period (0 disables; needs -state)")
		flushTick    = fs.Duration("flush-interval", 2*time.Second, "alert delivery liveness barrier period (0 disables)")
		retention    = fs.Int("retention", 0, "retention horizon in windows: customers silent that long are scored through the horizon and evicted; 0 keeps everyone forever")
		ttlInterval  = fs.Duration("ttl-interval", time.Minute, "idle-customer eviction sweep period (0 disables; needs -retention)")

		follow          = fs.String("follow", "", "STB1 snapshot to tail as the ingest source instead of HTTP (POST /v1/receipts answers 409)")
		followPoll      = fs.Duration("follow-poll", 500*time.Millisecond, "follow-mode poll period (needs -follow)")
		journal         = fs.String("journal", "", "STB1 receipt journal path: accepted receipts are appended one segment per close barrier (exclusive with -follow)")
		compactInterval = fs.Duration("compact-interval", 0, "scheduled journal self-compaction period (0 disables; needs -journal)")

		readTimeout       = fs.Duration("read-timeout", time.Minute, "http.Server ReadTimeout: full-request read bound (0 disables)")
		readHeaderTimeout = fs.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout: slow-client header bound (0 disables)")
		idleTimeout       = fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout: keep-alive connection bound (0 disables)")
		writeDeadline     = fs.Duration("write-deadline", time.Minute, "per-request response write deadline, rolled forward on streaming paths (the global WriteTimeout stays 0 so SSE survives)")
	)
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	o, err := time.Parse("2006-01", *origin)
	if err != nil {
		return config{}, fmt.Errorf("invalid -origin %q (want YYYY-MM): %w", *origin, err)
	}
	grid, err := stability.NewGrid(o, *span)
	if err != nil {
		return config{}, err
	}
	pol, err := stability.ParseIngestPolicy(*policy)
	if err != nil {
		return config{}, err
	}
	return config{
		addr:      *addr,
		pprofAddr: *pprofAddr,
		serve: stability.ServerConfig{
			Monitor: stability.MonitorConfig{
				Grid:             grid,
				Model:            stability.Options{Alpha: *alpha},
				Beta:             *beta,
				TopJ:             *topJ,
				WarmupWindows:    *warmup,
				RetentionWindows: *retention,
			},
			Shards:          *shards,
			QueueBatches:    *queue,
			Policy:          pol,
			MaxBatch:        *maxBatch,
			AlertBuffer:     *alertBuffer,
			StatePath:       *state,
			SaveInterval:    *saveInterval,
			FlushInterval:   *flushTick,
			TTLInterval:     *ttlInterval,
			FollowPath:      *follow,
			FollowInterval:  *followPoll,
			JournalPath:     *journal,
			CompactInterval: *compactInterval,
			WriteDeadline:   *writeDeadline,
		},
		readTimeout:       *readTimeout,
		readHeaderTimeout: *readHeaderTimeout,
		idleTimeout:       *idleTimeout,
	}, nil
}

// run parses flags, binds the listener, and serves until SIGINT/SIGTERM.
func run(args []string, stderr *os.File) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	return serveUntilSignal(cfg, ln, stderr)
}

// servePprof binds the opt-in debug listener and serves net/http/pprof on
// it until the listener is closed. The profiler rides its own mux (never
// the public one) and its own goroutine: purely diagnostic reads of
// runtime state that cannot reach scored output.
func servePprof(addr string, stderr *os.File) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(stderr, "attritiond: pprof debug listener on %s\n", ln.Addr())
	//detlint:ignore R3 debug-only pprof accept loop; serves runtime telemetry to operators and never touches the receipt pipeline or scored output
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}

// serveUntilSignal runs the daemon on an existing listener until the
// process is signalled (or the listener fails), then drains and persists.
// Split from run so tests can drive a real daemon on a loopback listener.
func serveUntilSignal(cfg config, ln net.Listener, stderr *os.File) error {
	srv, err := stability.NewServer(cfg.serve)
	if err != nil {
		ln.Close()
		return err
	}
	if cfg.pprofAddr != "" {
		dbg, err := servePprof(cfg.pprofAddr, stderr)
		if err != nil {
			ln.Close()
			srv.Close()
			return err
		}
		defer dbg.Close()
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadTimeout:       cfg.readTimeout,
		ReadHeaderTimeout: cfg.readHeaderTimeout,
		IdleTimeout:       cfg.idleTimeout,
		// WriteTimeout stays 0: serve arms per-request write deadlines and
		// rolls them forward on the streaming paths, which bounds stalled
		// clients without cutting healthy SSE streams off mid-flight.
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// On signal: stop accepting and drain in-flight handlers, bounded. No
	// raw goroutine needed — AfterFunc runs the shutdown off this stack.
	stopShutdown := context.AfterFunc(ctx, func() {
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(sctx)
	})
	defer stopShutdown()

	fmt.Fprintf(stderr, "attritiond: listening on %s (policy %s, %d-batch queue, state %q)\n",
		ln.Addr(), cfg.serve.Policy, cfg.serve.QueueBatches, cfg.serve.StatePath)
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		srv.Close()
		return err
	}
	// Handlers have returned; drain the ingestion queue, deliver buffered
	// alerts, persist the final snapshot, stop the pipeline.
	if err := srv.Close(); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(stderr, "attritiond: drained and persisted, bye")
	return nil
}
