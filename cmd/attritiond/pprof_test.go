package main

import (
	"io"
	"net/http"
	"os"
	"testing"
)

// TestServePprof boots the debug listener, fetches the pprof index and a
// heap profile through it, and checks it closes cleanly. The profiler is
// opt-in and bound to its own address, so the public API listener is never
// involved.
func TestServePprof(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	ln, err := servePprof("127.0.0.1:0", devnull)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Errorf("GET %s: status %d, %d body bytes", path, resp.StatusCode, len(body))
		}
	}
}

// TestParseFlagsPprof pins the flag's plumbing and its off-by-default.
func TestParseFlagsPprof(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.pprofAddr != "" {
		t.Errorf("pprof defaults to %q, want disabled", cfg.pprofAddr)
	}
	cfg, err = parseFlags([]string{"-pprof", "localhost:6060"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.pprofAddr != "localhost:6060" {
		t.Errorf("pprofAddr = %q", cfg.pprofAddr)
	}
}
