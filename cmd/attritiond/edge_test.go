package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"
)

// TestParseFlagsMaintenance pins the plumbing of the self-healing and
// HTTP-edge flags into the server and http.Server configuration.
func TestParseFlagsMaintenance(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-follow", "/tmp/feed.stb", "-follow-poll", "50ms",
		"-read-timeout", "30s", "-read-header-timeout", "1s",
		"-idle-timeout", "45s", "-write-deadline", "20s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.serve.FollowPath != "/tmp/feed.stb" || cfg.serve.FollowInterval != 50*time.Millisecond {
		t.Errorf("follow plumbing: %+v", cfg.serve)
	}
	if cfg.readTimeout != 30*time.Second || cfg.readHeaderTimeout != time.Second ||
		cfg.idleTimeout != 45*time.Second || cfg.serve.WriteDeadline != 20*time.Second {
		t.Errorf("timeout plumbing: %+v", cfg)
	}

	cfg, err = parseFlags([]string{"-journal", "/tmp/j.stbj", "-compact-interval", "2m"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.serve.JournalPath != "/tmp/j.stbj" || cfg.serve.CompactInterval != 2*time.Minute {
		t.Errorf("journal plumbing: %+v", cfg.serve)
	}
}

// TestDaemonStalledClientDoesNotWedge connects a client that never
// finishes its request headers: -read-header-timeout must close that
// connection while the daemon keeps serving everyone else. This is the
// regression test for the original zero-timeout http.Server, where one
// stalled socket held its connection goroutine forever.
func TestDaemonStalledClientDoesNotWedge(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-origin", "2012-05",
		"-read-header-timeout", "200ms", "-read-timeout", "1s",
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		t.Fatal(err)
	}
	stderr, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	defer stderr.Close()
	done := make(chan error, 1)
	go func() { done <- serveUntilSignal(cfg, ln, stderr) }()
	base := "http://" + ln.Addr().String()

	// The stalled client: request line sent, headers never terminated.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: stalled\r\n")); err != nil {
		t.Fatal(err)
	}

	// While that socket idles, the daemon must answer others.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz during stall: status %d body %+v", resp.StatusCode, h)
	}

	// The read-header timeout reaps the stalled connection: the server
	// closes it, so the client's read unblocks with EOF (or a 408) well
	// before this deadline.
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatalf("stalled connection not closed by the server: %v", err)
	}

	// And the daemon is still fully alive afterwards.
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after reap: status %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveUntilSignal: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}
