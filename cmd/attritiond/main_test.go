package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-origin", "2012-05", "-span", "2",
		"-policy", "reject", "-queue", "7", "-state", "/tmp/x.smn",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:0" || cfg.serve.QueueBatches != 7 || cfg.serve.StatePath != "/tmp/x.smn" {
		t.Errorf("parsed config: %+v", cfg)
	}
	if got := cfg.serve.Policy.String(); got != "reject" {
		t.Errorf("policy = %s", got)
	}
	if o := cfg.serve.Monitor.Grid.Origin(); o.Year() != 2012 || o.Month() != time.May {
		t.Errorf("origin = %v", o)
	}

	for _, bad := range [][]string{
		{"-origin", "May 2012"},
		{"-policy", "drop"},
		{"-span", "0"},
		{"-unknown"},
	} {
		if _, err := parseFlags(bad); err == nil {
			t.Errorf("parseFlags(%v) accepted bad input", bad)
		}
	}
}

// TestDaemonSignalShutdown boots the real daemon on a loopback listener,
// feeds it over HTTP, delivers SIGTERM, and checks the shutdown path:
// serveUntilSignal returns cleanly and the state file holds the drained
// monitor, so a second boot resumes at the advanced watermark.
func TestDaemonSignalShutdown(t *testing.T) {
	state := filepath.Join(t.TempDir(), "mon.smn")
	stderr, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	defer stderr.Close()

	boot := func() (string, chan error) {
		cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-origin", "2012-05", "-state", state})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", cfg.addr)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- serveUntilSignal(cfg, ln, stderr) }()
		return "http://" + ln.Addr().String(), done
	}

	base, done := boot()
	// Months 0 and 2: the month-2 receipt closes window 0.
	body, _ := json.Marshal(map[string]any{"receipts": []map[string]any{
		{"customer": 1, "time": "2012-05-03T09:00:00Z", "items": []int{1, 2}},
		{"customer": 1, "time": "2012-07-04T09:00:00Z", "items": []int{1, 2}},
	}})
	resp, err := http.Post(base+"/v1/receipts", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: status %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveUntilSignal: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("state not persisted: %v", err)
	}

	// Reboot from the state file: the watermark must have survived.
	base, done = boot()
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status    string `json:"status"`
		Customers int    `json:"customers"`
		Watermark int    `json:"watermark"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Customers != 1 || h.Watermark != 1 {
		t.Errorf("resumed healthz: %+v, want ok/1/1", h)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("second shutdown: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("second daemon did not shut down")
	}

	log, err := os.ReadFile(stderr.Name())
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(log), "drained and persisted"); n != 2 {
		t.Errorf("shutdown log lines = %d, want 2:\n%s", n, log)
	}
}

func TestRunBadAddr(t *testing.T) {
	if err := run([]string{"-addr", "256.0.0.1:http"}, os.NewFile(0, os.DevNull)); err == nil {
		t.Error("run accepted an unbindable address")
	}
	if err := run([]string{"-origin", "nope"}, os.NewFile(0, os.DevNull)); err == nil {
		t.Error("run accepted a bad origin")
	}
}
