package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/gautrais/stability"
	"github.com/gautrais/stability/internal/population"
	"github.com/gautrais/stability/internal/report"
)

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		out       = fs.String("out", "receipts.csv", "receipt output path (.csv, .jsonl, or .stb/.bin binary snapshot)")
		labelsOut = fs.String("labels", "", "labels CSV output path (optional)")
		catOut    = fs.String("catalog", "", "catalog CSV output path (optional)")
		customers = fs.Int("customers", 0, "population size (0 = default)")
		seed      = fs.Int64("seed", 0, "dataset seed (0 = default)")
		months    = fs.Int("months", 0, "dataset length in months (0 = default 28); with -extend, the length of the existing base dataset")
		extend    = fs.Int("extend", 0, "append N months to the existing dataset at -out instead of regenerating it: the base is re-derived from the same flags, the simulation resumes past its horizon, and only the new receipts are appended to the file")
		workers   = fs.Int("workers", 0, "generation worker pool size (0 = all CPUs; output is identical for any value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := stability.DefaultSampleConfig()
	if *customers > 0 {
		cfg.Customers = *customers
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *months > 0 {
		cfg.Months = *months
		if cfg.OnsetMonth >= cfg.Months {
			cfg.OnsetMonth = cfg.Months * 2 / 3
			if cfg.OnsetMonth < 1 {
				cfg.OnsetMonth = 1
			}
		}
	}
	ds, err := stability.GenerateSampleWith(cfg, stability.SampleOptions{Workers: *workers})
	if err != nil {
		return err
	}
	if *extend > 0 {
		if err := extendFile(*out, ds, *extend, *workers); err != nil {
			return err
		}
		fmt.Printf("extended %s by %d months (now %d months, %d customers, %d receipts)\n",
			*out, *extend, ds.Config.Months, ds.Store.NumCustomers(), ds.Store.NumReceipts())
	} else {
		if err := writeTo(*out, func(f *os.File) error { return writeStore(f, *out, ds.Store) }); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d customers, %d receipts)\n", *out, ds.Store.NumCustomers(), ds.Store.NumReceipts())
	}
	if *labelsOut != "" {
		if err := writeTo(*labelsOut, func(f *os.File) error {
			return stability.WriteLabelsCSV(f, ds.Truth.Labels())
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *labelsOut)
	}
	if *catOut != "" {
		if err := writeTo(*catOut, func(f *os.File) error { return stability.WriteCatalogCSV(f, ds.Catalog) }); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *catOut)
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	data := fs.String("data", "", "receipt CSV path (required)")
	top := fs.Int("top", 10, "top-N items to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := loadStore(*data)
	if err != nil {
		return err
	}
	st.Summarize(*top).Render(os.Stdout)
	return nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	var (
		data     = fs.String("data", "", "receipt CSV path (required)")
		customer = fs.Uint64("customer", 0, "customer id (required)")
		span     = fs.Int("span", 2, "window span in months")
		alpha    = fs.Float64("alpha", 2, "significance base α")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	series, _, grid, err := analyzeOne(*data, *customer, *span, *alpha)
	if err != nil {
		return err
	}
	t := report.NewTable("window", "months", "stability", "missing_items", "new_items")
	for _, p := range series.Points {
		start, end := grid.Bounds(p.GridIndex)
		t.AddRow(p.GridIndex,
			fmt.Sprintf("%s..%s", start.Format("2006-01"), end.AddDate(0, 0, -1).Format("2006-01")),
			p.Stability, len(p.Missing), len(p.NewItems))
	}
	t.Render(os.Stdout)
	return nil
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	var (
		data     = fs.String("data", "", "receipt CSV path (required)")
		customer = fs.Uint64("customer", 0, "customer id (required)")
		span     = fs.Int("span", 2, "window span in months")
		alpha    = fs.Float64("alpha", 2, "significance base α")
		topJ     = fs.Int("top", 3, "blamed products per drop")
		minDrop  = fs.Float64("min-drop", 0.05, "minimum stability decrease to report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	series, _, grid, err := analyzeOne(*data, *customer, *span, *alpha)
	if err != nil {
		return err
	}
	drops := series.Drops(*minDrop, *topJ)
	if len(drops) == 0 {
		fmt.Printf("customer %d: no stability drop >= %.2f — looks loyal\n", *customer, *minDrop)
		return nil
	}
	for _, d := range drops {
		start, end := grid.Bounds(d.GridIndex)
		fmt.Printf("window %d (%s..%s): stability %.3f -> %.3f\n",
			d.GridIndex, start.Format("2006-01-02"), end.AddDate(0, 0, -1).Format("2006-01-02"), d.From, d.To)
		for _, b := range d.Blame {
			fmt.Printf("    missing item %-8d significance exponent %+d  share %.3f\n", b.Item, b.Net, b.Share)
		}
	}
	return nil
}

func cmdEvaluate(args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ExitOnError)
	var (
		data    = fs.String("data", "", "receipt CSV path (required)")
		labels  = fs.String("labels", "", "labels CSV path (required)")
		span    = fs.Int("span", 2, "window span in months")
		alpha   = fs.Float64("alpha", 2, "significance base α")
		workers = fs.Int("workers", 0, "scoring worker pool size (0 = all CPUs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := loadStore(*data)
	if err != nil {
		return err
	}
	lf, err := os.Open(*labels)
	if err != nil {
		return err
	}
	defer lf.Close()
	labelRecs, err := stability.ReadLabelsCSV(lf)
	if err != nil {
		return err
	}
	labelOf := make(map[stability.CustomerID]stability.Cohort, len(labelRecs))
	for _, l := range labelRecs {
		labelOf[l.Customer] = l.Cohort
	}

	min, max, ok := st.TimeRange()
	if !ok {
		return fmt.Errorf("dataset is empty")
	}
	grid, err := stability.NewGrid(min, *span)
	if err != nil {
		return err
	}
	lastK := grid.Index(max)
	model, err := stability.NewModel(stability.Options{Alpha: *alpha})
	if err != nil {
		return err
	}

	// Score every labelled customer at every window on the population
	// engine; the per-window fold below runs in input (id) order, so the
	// table is identical at every worker count.
	var (
		histories []stability.History
		cohorts   []stability.Cohort
	)
	ids := st.Customers()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cohort, ok := labelOf[id]
		if !ok || cohort == stability.CohortUnknown {
			continue
		}
		h, err := st.History(id)
		if err != nil {
			return err
		}
		histories = append(histories, h)
		cohorts = append(cohorts, cohort)
	}
	// Stability-only engine path: the AUROC fold below never reads blame
	// or new-item lists, so skip building them.
	allSeries, err := population.AnalyzeStability(model, histories, grid, lastK,
		population.Options{Workers: *workers})
	if err != nil {
		return err
	}
	type row struct {
		scores []float64
		isDef  []bool
	}
	perWindow := make([]row, lastK+1)
	for i, series := range allSeries {
		for k := 0; k <= lastK; k++ {
			s := 1.0
			if v, ok := series.StabilityAt(k); ok {
				s = v
			}
			perWindow[k].scores = append(perWindow[k].scores, 1-s)
			perWindow[k].isDef = append(perWindow[k].isDef, cohorts[i] == stability.CohortDefecting)
		}
	}

	t := report.NewTable("window", "end_month", "auroc", "n")
	for k := 0; k <= lastK; k++ {
		auc, err := stability.AUROC(perWindow[k].scores, perWindow[k].isDef)
		cell := "-"
		if err == nil {
			cell = fmt.Sprintf("%.4f", auc)
		}
		t.AddRow(k, (k+1)*(*span), cell, len(perWindow[k].scores))
	}
	t.Render(os.Stdout)
	return nil
}

func analyzeOne(path string, customer uint64, span int, alpha float64) (stability.Series, *stability.Store, stability.Grid, error) {
	st, err := loadStore(path)
	if err != nil {
		return stability.Series{}, nil, stability.Grid{}, err
	}
	min, max, ok := st.TimeRange()
	if !ok {
		return stability.Series{}, nil, stability.Grid{}, fmt.Errorf("dataset is empty")
	}
	grid, err := stability.NewGrid(min, span)
	if err != nil {
		return stability.Series{}, nil, stability.Grid{}, err
	}
	h, err := st.History(stability.CustomerID(customer))
	if err != nil {
		return stability.Series{}, nil, stability.Grid{}, err
	}
	model, err := stability.NewModel(stability.Options{Alpha: alpha})
	if err != nil {
		return stability.Series{}, nil, stability.Grid{}, err
	}
	series, err := stability.AnalyzeHistory(model, h, grid, grid.Index(max))
	if err != nil {
		return stability.Series{}, nil, stability.Grid{}, err
	}
	return series, st, grid, nil
}

func loadStore(path string) (*stability.Store, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -data flag")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sf := stability.ReceiptFormatForPath(path)
	if sf.Name == "csv" {
		// CLI affordance for hand-edited files: lenient CSV read with a
		// skipped-rows warning instead of the table's strict reader.
		st, rep, err := stability.ReadReceiptsCSV(f, false)
		if err != nil {
			return nil, err
		}
		if rep.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "warning: skipped %d malformed rows\n", rep.Skipped)
		}
		return st, nil
	}
	return sf.Read(f)
}

func writeTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeStore serializes a full store in the format the path's suffix
// names (.jsonl, .stb/.bin, else CSV) — the same dispatch loadStore uses.
func writeStore(f *os.File, path string, st *stability.Store) error {
	return stability.ReceiptFormatForPath(path).Write(f, st)
}

// extendFile grows an existing dataset file in place: ds must be the
// regenerated base dataset for the command's flags. The file may already
// have been extended past the base horizon — extension is bit-identical to
// regeneration, so GrowSample fast-forwards ds to the file's current
// length, verifies the file against it, then extends by the requested
// months; only the receipts beyond the file's current end are appended.
func extendFile(path string, ds *stability.SampleDataset, months, workers int) error {
	onDisk, err := loadStore(path)
	if err != nil {
		return fmt.Errorf("-extend: read existing dataset: %w", err)
	}
	prev, err := stability.GrowSample(ds, onDisk, months, stability.SampleOptions{Workers: workers})
	if err != nil {
		return fmt.Errorf("-extend: %s: %w", path, err)
	}
	return appendDeltaTo(path, ds.Store, prev)
}

// appendDeltaTo appends cur's receipts beyond prev to an existing dataset
// file, never rewriting the bytes already there. The format follows the
// path suffix, exactly as writeStore. A failed append (disk full, codec
// error) truncates the file back to its original size, so the dataset is
// never left with a half-written trailing segment.
func appendDeltaTo(path string, cur, prev *stability.Store) error {
	return appendOrRestore(path, func(f *os.File) error {
		return stability.ReceiptFormatForPath(path).WriteDelta(f, cur, prev)
	})
}

// appendOrRestore opens path for appending, runs fn, and on any failure
// truncates the file back to its pre-append size before reporting the
// error.
func appendOrRestore(path string, fn func(*os.File) error) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		os.Truncate(path, info.Size())
		return err
	}
	if err := f.Close(); err != nil {
		os.Truncate(path, info.Size())
		return err
	}
	return nil
}
