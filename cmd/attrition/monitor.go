package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/gautrais/stability"
)

// cmdMonitor replays a receipt dataset in timestamp order through the
// sharded streaming monitor and prints every alert, demonstrating the
// production deployment shape of the model on recorded data. Alerts are
// collected at each window boundary (the feed's watermark), so output is
// deterministic for any -shards value.
func cmdMonitor(args []string) error {
	fs := flag.NewFlagSet("monitor", flag.ExitOnError)
	var (
		data    = fs.String("data", "", "receipt CSV/JSONL/snapshot path (required)")
		span    = fs.Int("span", 2, "window span in months")
		alpha   = fs.Float64("alpha", 2, "significance base α")
		beta    = fs.Float64("beta", 0.6, "loyalty threshold: alert at stability <= beta")
		topJ    = fs.Int("top", 3, "blamed products per alert")
		warmup  = fs.Int("warmup", 4, "windows of history before alerts may fire")
		shards  = fs.Int("shards", 0, "ingestion shards (customer-hash partitions); 0 = GOMAXPROCS")
		maxShow = fs.Int("max-show", 50, "maximum alerts to print (summary always shown)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := loadStore(*data)
	if err != nil {
		return err
	}
	min, _, ok := st.TimeRange()
	if !ok {
		return fmt.Errorf("dataset is empty")
	}
	grid, err := stability.NewGrid(min, *span)
	if err != nil {
		return err
	}
	monitor, err := stability.NewShardedMonitor(stability.MonitorConfig{
		Grid:          grid,
		Model:         stability.Options{Alpha: *alpha},
		Beta:          *beta,
		TopJ:          *topJ,
		WarmupWindows: *warmup,
	}, stability.MonitorOptions{Shards: *shards})
	if err != nil {
		return err
	}

	type event struct {
		id stability.CustomerID
		r  stability.Receipt
	}
	var feed []event
	st.Each(func(h stability.History) bool {
		for _, r := range h.Receipts {
			feed = append(feed, event{h.Customer, r})
		}
		return true
	})
	sort.SliceStable(feed, func(i, j int) bool { return feed[i].r.Time.Before(feed[j].r.Time) })

	shown, total := 0, 0
	emit := func(alerts []stability.Alert) {
		for _, a := range alerts {
			total++
			if shown >= *maxShow {
				continue
			}
			shown++
			parts := make([]string, 0, len(a.Blame))
			for _, b := range a.Blame {
				parts = append(parts, fmt.Sprintf("item %d (share %.2f)", b.Item, b.Share))
			}
			fmt.Printf("%s customer %-8d stability %.3f  missing: %s\n",
				a.End.Format("2006-01"), a.Customer, a.Stability, strings.Join(parts, ", "))
		}
	}

	lastK := 0
	for _, ev := range feed {
		k := grid.Index(ev.r.Time)
		if k > lastK {
			alerts, err := monitor.CloseThrough(k - 1)
			if err != nil {
				return fmt.Errorf("close through window %d: %w", k-1, err)
			}
			emit(alerts)
			lastK = k
		}
		if err := monitor.Ingest(ev.id, ev.r.Time, ev.r.Items); err != nil {
			return fmt.Errorf("ingest customer %d: %w", ev.id, err)
		}
	}
	alerts, err := monitor.CloseThrough(lastK)
	if err != nil {
		return fmt.Errorf("close through window %d: %w", lastK, err)
	}
	emit(alerts)
	final, err := monitor.Close()
	if err != nil {
		return fmt.Errorf("monitor close: %w", err)
	}
	emit(final)
	fmt.Fprintf(os.Stdout, "\n%d alerts over %d customers (%d shards, %d shown)\n",
		total, monitor.Customers(), monitor.Shards(), shown)
	return nil
}
