package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/gautrais/stability"
)

// cmdMonitor replays a receipt dataset in timestamp order through the
// sharded streaming monitor and prints every alert, demonstrating the
// production deployment shape of the model on recorded data. Alerts are
// collected at each window boundary (the feed's watermark), so output is
// deterministic for any -shards value.
//
// With -state, the monitor becomes an incremental consumer of a growing
// dataset: the first run processes the file and persists the monitor
// snapshot; after the dataset is extended in place (attrition gen -extend),
// the next run restores the snapshot, feeds only the windows past its
// watermark, and persists again. The alerts printed across the incremental
// runs are exactly the alerts one batch replay of the final file prints —
// extension never rescores the past. Because more data may follow —
// possibly for the very month the file ends in — -state runs close only
// windows that ended at or before the start of the last receipt's month;
// later windows stay open (their pending baskets persist in the snapshot,
// and they are scored once a later run proves them covered) instead of
// being force-closed.
func cmdMonitor(args []string) error {
	fs := flag.NewFlagSet("monitor", flag.ExitOnError)
	var (
		data      = fs.String("data", "", "receipt CSV/JSONL/snapshot path (required)")
		span      = fs.Int("span", 2, "window span in months")
		alpha     = fs.Float64("alpha", 2, "significance base α")
		beta      = fs.Float64("beta", 0.6, "loyalty threshold: alert at stability <= beta")
		topJ      = fs.Int("top", 3, "blamed products per alert")
		warmup    = fs.Int("warmup", 4, "windows of history before alerts may fire")
		shards    = fs.Int("shards", 0, "ingestion shards (customer-hash partitions); 0 = GOMAXPROCS")
		state     = fs.String("state", "", "monitor snapshot path: restore from it when present, feed only new windows, persist back (incremental replay of a growing dataset)")
		maxShow   = fs.Int("max-show", 50, "maximum alerts to print (summary always shown)")
		follow    = fs.Bool("follow", false, "tail -data (a binary snapshot segment chain) for appended segments instead of exiting at end of file; SIGTERM exits cleanly, persisting -state")
		poll      = fs.Duration("poll", 2*time.Second, "poll interval in -follow mode")
		retention = fs.Int("retention", 0, "retention horizon in windows: customers silent that long are scored through the horizon and evicted; 0 keeps everyone forever")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *follow {
		return runFollow(followParams{
			data: *data, span: *span, alpha: *alpha, beta: *beta, topJ: *topJ,
			warmup: *warmup, shards: *shards, state: *state, maxShow: *maxShow,
			poll: *poll, retention: *retention,
		})
	}
	st, err := loadStore(*data)
	if err != nil {
		return err
	}
	min, max, ok := st.TimeRange()
	if !ok {
		return fmt.Errorf("dataset is empty")
	}
	grid, err := stability.NewGrid(min, *span)
	if err != nil {
		return err
	}
	cfg := stability.MonitorConfig{
		Grid:             grid,
		Model:            stability.Options{Alpha: *alpha},
		Beta:             *beta,
		TopJ:             *topJ,
		WarmupWindows:    *warmup,
		RetentionWindows: *retention,
	}
	monitor, resumeK, err := openMonitor(cfg, *state, *shards)
	if err != nil {
		return err
	}

	type event struct {
		id stability.CustomerID
		r  stability.Receipt
	}
	var feed []event
	skipped := 0
	st.Each(func(h stability.History) bool {
		for _, r := range h.Receipts {
			if grid.Index(r.Time) < resumeK {
				skipped++ // window already scored by a previous -state run
				continue
			}
			feed = append(feed, event{h.Customer, r})
		}
		return true
	})
	sort.SliceStable(feed, func(i, j int) bool { return feed[i].r.Time.Before(feed[j].r.Time) })
	if skipped > 0 {
		fmt.Printf("resuming at window %d: %d receipts already processed, %d new\n", resumeK, skipped, len(feed))
	}

	shown, total := 0, 0
	emit := func(alerts []stability.Alert) {
		for _, a := range alerts {
			total++
			if shown >= *maxShow {
				continue
			}
			shown++
			parts := make([]string, 0, len(a.Blame))
			for _, b := range a.Blame {
				parts = append(parts, fmt.Sprintf("item %d (share %.2f)", b.Item, b.Share))
			}
			fmt.Printf("%s customer %-8d stability %.3f  missing: %s\n",
				a.End.Format("2006-01"), a.Customer, a.Stability, strings.Join(parts, ", "))
		}
	}

	lastK := resumeK
	for _, ev := range feed {
		k := grid.Index(ev.r.Time)
		if k > lastK {
			alerts, err := monitor.CloseThrough(k - 1)
			if err != nil {
				return fmt.Errorf("close through window %d: %w", k-1, err)
			}
			emit(alerts)
			lastK = k
		}
		if err := monitor.Ingest(ev.id, ev.r.Time, ev.r.Items); err != nil {
			return fmt.Errorf("ingest customer %d: %w", ev.id, err)
		}
	}
	// End-of-data watermark. Without -state this is the last window seen —
	// the replay is final, score everything. With -state, more data may be
	// appended later, and a stream can never prove the month containing
	// its last receipt is complete (the file may end mid-month; appended
	// receipts for that month must still be ingestible). So only windows
	// that ended at or before that month's start are closed; later windows
	// stay open — their pending baskets persist in the snapshot — until a
	// subsequent run proves them covered.
	closeK := lastK
	if *state != "" {
		lastMonthStart := grid.Origin().AddDate(0, grid.MonthIndex(max), 0)
		closeK = grid.Index(lastMonthStart) - 1
	}
	alerts, err := monitor.CloseThrough(closeK)
	if err != nil {
		return fmt.Errorf("close through window %d: %w", closeK, err)
	}
	emit(alerts)
	final, err := monitor.Close()
	if err != nil {
		return fmt.Errorf("monitor close: %w", err)
	}
	emit(final)
	if *state != "" {
		if err := saveMonitorState(*state, monitor); err != nil {
			return err
		}
		fmt.Printf("state saved to %s (watermark window %d)\n", *state, closeK+1)
	}
	fmt.Fprintf(os.Stdout, "\n%d alerts over %d customers (%d shards, %d shown)\n",
		total, monitor.Customers(), monitor.Shards(), shown)
	return nil
}

type followParams struct {
	data      string
	span      int
	alpha     float64
	beta      float64
	topJ      int
	warmup    int
	shards    int
	state     string
	maxShow   int
	poll      time.Duration
	retention int
}

// runFollow is `monitor -follow`: instead of replaying a finished file, it
// tails a growing binary snapshot chain by polling (stat size + decode the
// new segments — no inotify), feeding each appended batch through the
// sharded monitor. Torn tails from a writer caught mid-append are retried
// quietly from the last good segment boundary; real corruption and a file
// that shrank (compacted underneath us) abort loudly.
//
// Windows are closed per batch under the same conservative rule -state
// replays use: only windows that ended at or before the start of the month
// containing the newest receipt seen so far, because the stream can never
// prove the current month is complete. Alerts printed across the whole
// follow session are therefore exactly what incremental -state replays of
// the same file would print. SIGTERM or SIGINT exits cleanly, persisting
// -state so the next run (follow or batch) resumes at the watermark.
func runFollow(p followParams) error {
	if p.data == "" {
		return fmt.Errorf("monitor -follow: -data is required")
	}
	if p.poll <= 0 {
		return fmt.Errorf("monitor -follow: -poll must be positive")
	}
	fol := stability.NewSnapshotFollower(p.data)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	tick := time.NewTicker(p.poll)
	defer tick.Stop()

	var (
		monitor     *stability.ShardedMonitor
		grid        stability.Grid
		lastK       int       // watermark: first window not yet closed
		maxSeen     time.Time // newest receipt timestamp across all batches
		shown       int
		total       int
		skippedLate int // receipts for windows already closed (out-of-contract appends)
	)
	emit := func(alerts []stability.Alert) {
		for _, a := range alerts {
			total++
			if shown >= p.maxShow {
				continue
			}
			shown++
			parts := make([]string, 0, len(a.Blame))
			for _, b := range a.Blame {
				parts = append(parts, fmt.Sprintf("item %d (share %.2f)", b.Item, b.Share))
			}
			fmt.Printf("%s customer %-8d stability %.3f  missing: %s\n",
				a.End.Format("2006-01"), a.Customer, a.Stability, strings.Join(parts, ", "))
		}
	}

	ingestBatch := func(batch *stability.Store) error {
		min, max, ok := batch.TimeRange()
		if !ok {
			return nil
		}
		if monitor == nil {
			// First data decides the grid origin — the same derivation a
			// batch replay of this file would make, since the first poll
			// returns the file from byte zero and appends never precede it.
			g, err := stability.NewGrid(min, p.span)
			if err != nil {
				return err
			}
			grid = g
			cfg := stability.MonitorConfig{
				Grid:             grid,
				Model:            stability.Options{Alpha: p.alpha},
				Beta:             p.beta,
				TopJ:             p.topJ,
				WarmupWindows:    p.warmup,
				RetentionWindows: p.retention,
			}
			m, resumeK, err := openMonitor(cfg, p.state, p.shards)
			if err != nil {
				return err
			}
			monitor, lastK = m, resumeK
			if resumeK > 0 {
				fmt.Printf("resuming at window %d\n", resumeK)
			}
		}
		type event struct {
			id stability.CustomerID
			r  stability.Receipt
		}
		var feed []event
		batch.Each(func(h stability.History) bool {
			for _, r := range h.Receipts {
				if grid.Index(r.Time) < lastK {
					skippedLate++
					continue
				}
				feed = append(feed, event{h.Customer, r})
			}
			return true
		})
		sort.SliceStable(feed, func(i, j int) bool { return feed[i].r.Time.Before(feed[j].r.Time) })
		for _, ev := range feed {
			if err := monitor.Ingest(ev.id, ev.r.Time, ev.r.Items); err != nil {
				return fmt.Errorf("ingest customer %d: %w", ev.id, err)
			}
		}
		if max.After(maxSeen) {
			maxSeen = max
		}
		lastMonthStart := grid.Origin().AddDate(0, grid.MonthIndex(maxSeen), 0)
		if closeK := grid.Index(lastMonthStart) - 1; closeK >= lastK {
			alerts, err := monitor.CloseThrough(closeK)
			if err != nil {
				return fmt.Errorf("close through window %d: %w", closeK, err)
			}
			emit(alerts)
			lastK = closeK + 1
		}
		return nil
	}

	fmt.Printf("following %s (poll %v); SIGTERM to stop\n", p.data, p.poll)
	for running := true; running; {
		batch, err := fol.Poll()
		if err != nil {
			return err
		}
		if batch != nil {
			if err := ingestBatch(batch); err != nil {
				return err
			}
		}
		select {
		case <-sig:
			running = false
		case <-tick.C:
		}
	}

	if monitor == nil {
		fmt.Println("stopped before any data arrived")
		return nil
	}
	final, err := monitor.Close()
	if err != nil {
		return fmt.Errorf("monitor close: %w", err)
	}
	emit(final)
	if p.state != "" {
		if err := saveMonitorState(p.state, monitor); err != nil {
			return err
		}
		fmt.Printf("state saved to %s (watermark window %d)\n", p.state, lastK)
	}
	if skippedLate > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d receipts arrived for already-closed windows and were dropped\n", skippedLate)
	}
	fmt.Printf("\n%d alerts over %d customers (%d shards, %d shown, %d segments read)\n",
		total, monitor.Customers(), monitor.Shards(), shown, fol.Segments())
	return nil
}

// openMonitor returns a fresh sharded monitor, or one restored from the
// state file when it exists, along with the window index feeding should
// resume from (0 for a fresh monitor).
func openMonitor(cfg stability.MonitorConfig, statePath string, shards int) (*stability.ShardedMonitor, int, error) {
	if statePath != "" {
		f, err := os.Open(statePath)
		switch {
		case err == nil:
			defer f.Close()
			monitor, err := stability.ReadShardedMonitorSnapshot(f, cfg, stability.MonitorOptions{Shards: shards})
			if err != nil {
				return nil, 0, fmt.Errorf("restore state %s: %w", statePath, err)
			}
			resumeK, _ := monitor.Watermark()
			return monitor, resumeK, nil
		case !os.IsNotExist(err):
			return nil, 0, err
		}
	}
	monitor, err := stability.NewShardedMonitor(cfg, stability.MonitorOptions{Shards: shards})
	if err != nil {
		return nil, 0, err
	}
	return monitor, 0, nil
}

// saveMonitorState atomically persists the monitor snapshot.
func saveMonitorState(path string, monitor *stability.ShardedMonitor) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := monitor.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
