package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	fnErr := fn()
	w.Close()
	out := <-done
	os.Stdout = orig
	if fnErr != nil {
		t.Fatal(fnErr)
	}
	return out
}

// genTestData writes a small dataset and returns the receipt and label
// paths.
func genTestData(t *testing.T) (dataPath, labelsPath string) {
	t.Helper()
	dir := t.TempDir()
	dataPath = filepath.Join(dir, "receipts.csv")
	labelsPath = filepath.Join(dir, "labels.csv")
	err := cmdGen([]string{
		"-out", dataPath,
		"-labels", labelsPath,
		"-customers", "40",
		"-seed", "11",
	})
	if err != nil {
		t.Fatal(err)
	}
	return dataPath, labelsPath
}

func TestCmdGenWritesFiles(t *testing.T) {
	data, labels := genTestData(t)
	for _, p := range []string{data, labels} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestCmdGenWithCatalog(t *testing.T) {
	dir := t.TempDir()
	cat := filepath.Join(dir, "catalog.csv")
	err := cmdGen([]string{
		"-out", filepath.Join(dir, "r.csv"),
		"-catalog", cat,
		"-customers", "10",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cat); err != nil {
		t.Fatal(err)
	}
}

func TestCmdStats(t *testing.T) {
	data, _ := genTestData(t)
	if err := cmdStats([]string{"-data", data, "-top", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-data", ""}); err == nil {
		t.Fatal("missing -data accepted")
	}
	if err := cmdStats([]string{"-data", "/nonexistent/file.csv"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCmdAnalyzeAndExplain(t *testing.T) {
	data, _ := genTestData(t)
	if err := cmdAnalyze([]string{"-data", data, "-customer", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze([]string{"-data", data, "-customer", "99999"}); err == nil {
		t.Fatal("unknown customer accepted")
	}
	if err := cmdExplain([]string{"-data", data, "-customer", "1", "-top", "2", "-min-drop", "0.01"}); err != nil {
		t.Fatal(err)
	}
	// Absurd threshold: no drops is a normal (non-error) outcome.
	if err := cmdExplain([]string{"-data", data, "-customer", "1", "-min-drop", "0.99"}); err != nil {
		t.Fatal(err)
	}
	// Bad alpha must fail.
	if err := cmdAnalyze([]string{"-data", data, "-customer", "1", "-alpha", "0.5"}); err == nil {
		t.Fatal("alpha=0.5 accepted")
	}
}

func TestCmdEvaluate(t *testing.T) {
	data, labels := genTestData(t)
	if err := cmdEvaluate([]string{"-data", data, "-labels", labels}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEvaluate([]string{"-data", data, "-labels", "/nonexistent.csv"}); err == nil {
		t.Fatal("missing labels accepted")
	}
}

func TestCmdMonitor(t *testing.T) {
	data, _ := genTestData(t)
	if err := cmdMonitor([]string{"-data", data, "-beta", "0.6", "-max-show", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMonitor([]string{"-data", "/nonexistent.csv"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := cmdMonitor([]string{"-data", data, "-beta", "1.5"}); err == nil {
		t.Fatal("beta=1.5 accepted")
	}
}

func TestCmdSegments(t *testing.T) {
	data, labels := genTestData(t)
	if err := cmdSegments([]string{"-data", data, "-top", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSegments([]string{"-data", data, "-labels", labels, "-top", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSegments([]string{"-data", "/nonexistent.csv"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := cmdSegments([]string{"-data", data, "-labels", "/nonexistent.csv"}); err == nil {
		t.Fatal("missing labels accepted")
	}
}

// TestGenEvaluateWorkerInvariance pins the end-to-end contract of the
// parallel pipeline at the CLI surface: generated CSVs and the evaluate
// table are byte-identical for every -workers value.
func TestGenEvaluateWorkerInvariance(t *testing.T) {
	var baseData, baseLabels []byte
	var baseEval string
	for _, workers := range []string{"1", "3", "8"} {
		dir := t.TempDir()
		data := filepath.Join(dir, "receipts.csv")
		labels := filepath.Join(dir, "labels.csv")
		err := cmdGen([]string{
			"-out", data, "-labels", labels,
			"-customers", "40", "-seed", "11", "-workers", workers,
		})
		if err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		dataBytes, err := os.ReadFile(data)
		if err != nil {
			t.Fatal(err)
		}
		labelBytes, err := os.ReadFile(labels)
		if err != nil {
			t.Fatal(err)
		}
		evalOut := captureStdout(t, func() error {
			return cmdEvaluate([]string{"-data", data, "-labels", labels, "-workers", workers})
		})
		if baseData == nil {
			baseData, baseLabels, baseEval = dataBytes, labelBytes, evalOut
			continue
		}
		if string(dataBytes) != string(baseData) {
			t.Errorf("workers=%s: receipts.csv differs", workers)
		}
		if string(labelBytes) != string(baseLabels) {
			t.Errorf("workers=%s: labels.csv differs", workers)
		}
		if evalOut != baseEval {
			t.Errorf("workers=%s: evaluate output differs", workers)
		}
	}
}

func TestLoadStoreFormats(t *testing.T) {
	data, _ := genTestData(t)
	st, err := loadStore(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumCustomers() != 40 {
		t.Fatalf("customers = %d", st.NumCustomers())
	}
	if _, err := loadStore(""); err == nil {
		t.Fatal("empty path accepted")
	}
}
