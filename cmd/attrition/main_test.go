package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/gautrais/stability"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	fnErr := fn()
	w.Close()
	out := <-done
	os.Stdout = orig
	if fnErr != nil {
		t.Fatal(fnErr)
	}
	return out
}

// genTestData writes a small dataset and returns the receipt and label
// paths.
func genTestData(t *testing.T) (dataPath, labelsPath string) {
	t.Helper()
	dir := t.TempDir()
	dataPath = filepath.Join(dir, "receipts.csv")
	labelsPath = filepath.Join(dir, "labels.csv")
	err := cmdGen([]string{
		"-out", dataPath,
		"-labels", labelsPath,
		"-customers", "40",
		"-seed", "11",
	})
	if err != nil {
		t.Fatal(err)
	}
	return dataPath, labelsPath
}

func TestCmdGenWritesFiles(t *testing.T) {
	data, labels := genTestData(t)
	for _, p := range []string{data, labels} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestCmdGenWithCatalog(t *testing.T) {
	dir := t.TempDir()
	cat := filepath.Join(dir, "catalog.csv")
	err := cmdGen([]string{
		"-out", filepath.Join(dir, "r.csv"),
		"-catalog", cat,
		"-customers", "10",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cat); err != nil {
		t.Fatal(err)
	}
}

func TestCmdStats(t *testing.T) {
	data, _ := genTestData(t)
	if err := cmdStats([]string{"-data", data, "-top", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-data", ""}); err == nil {
		t.Fatal("missing -data accepted")
	}
	if err := cmdStats([]string{"-data", "/nonexistent/file.csv"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCmdAnalyzeAndExplain(t *testing.T) {
	data, _ := genTestData(t)
	if err := cmdAnalyze([]string{"-data", data, "-customer", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze([]string{"-data", data, "-customer", "99999"}); err == nil {
		t.Fatal("unknown customer accepted")
	}
	if err := cmdExplain([]string{"-data", data, "-customer", "1", "-top", "2", "-min-drop", "0.01"}); err != nil {
		t.Fatal(err)
	}
	// Absurd threshold: no drops is a normal (non-error) outcome.
	if err := cmdExplain([]string{"-data", data, "-customer", "1", "-min-drop", "0.99"}); err != nil {
		t.Fatal(err)
	}
	// Bad alpha must fail.
	if err := cmdAnalyze([]string{"-data", data, "-customer", "1", "-alpha", "0.5"}); err == nil {
		t.Fatal("alpha=0.5 accepted")
	}
}

func TestCmdEvaluate(t *testing.T) {
	data, labels := genTestData(t)
	if err := cmdEvaluate([]string{"-data", data, "-labels", labels}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEvaluate([]string{"-data", data, "-labels", "/nonexistent.csv"}); err == nil {
		t.Fatal("missing labels accepted")
	}
}

func TestCmdMonitor(t *testing.T) {
	data, _ := genTestData(t)
	if err := cmdMonitor([]string{"-data", data, "-beta", "0.6", "-max-show", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMonitor([]string{"-data", "/nonexistent.csv"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := cmdMonitor([]string{"-data", data, "-beta", "1.5"}); err == nil {
		t.Fatal("beta=1.5 accepted")
	}
}

func TestCmdSegments(t *testing.T) {
	data, labels := genTestData(t)
	if err := cmdSegments([]string{"-data", data, "-top", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSegments([]string{"-data", data, "-labels", labels, "-top", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSegments([]string{"-data", "/nonexistent.csv"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := cmdSegments([]string{"-data", data, "-labels", "/nonexistent.csv"}); err == nil {
		t.Fatal("missing labels accepted")
	}
}

// TestGenEvaluateWorkerInvariance pins the end-to-end contract of the
// parallel pipeline at the CLI surface: generated CSVs and the evaluate
// table are byte-identical for every -workers value.
func TestGenEvaluateWorkerInvariance(t *testing.T) {
	var baseData, baseLabels []byte
	var baseEval string
	for _, workers := range []string{"1", "3", "8"} {
		dir := t.TempDir()
		data := filepath.Join(dir, "receipts.csv")
		labels := filepath.Join(dir, "labels.csv")
		err := cmdGen([]string{
			"-out", data, "-labels", labels,
			"-customers", "40", "-seed", "11", "-workers", workers,
		})
		if err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		dataBytes, err := os.ReadFile(data)
		if err != nil {
			t.Fatal(err)
		}
		labelBytes, err := os.ReadFile(labels)
		if err != nil {
			t.Fatal(err)
		}
		evalOut := captureStdout(t, func() error {
			return cmdEvaluate([]string{"-data", data, "-labels", labels, "-workers", workers})
		})
		if baseData == nil {
			baseData, baseLabels, baseEval = dataBytes, labelBytes, evalOut
			continue
		}
		if string(dataBytes) != string(baseData) {
			t.Errorf("workers=%s: receipts.csv differs", workers)
		}
		if string(labelBytes) != string(baseLabels) {
			t.Errorf("workers=%s: labels.csv differs", workers)
		}
		if evalOut != baseEval {
			t.Errorf("workers=%s: evaluate output differs", workers)
		}
	}
}

func TestLoadStoreFormats(t *testing.T) {
	data, _ := genTestData(t)
	st, err := loadStore(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumCustomers() != 40 {
		t.Fatalf("customers = %d", st.NumCustomers())
	}
	if _, err := loadStore(""); err == nil {
		t.Fatal("empty path accepted")
	}
}

// readStoreFile parses a dataset file through the command's own loader.
func readStoreFile(t *testing.T, path string) *stability.Store {
	t.Helper()
	st, err := loadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// storeFileBytes canonicalizes a dataset file as binary snapshot bytes.
func storeFileBytes(t *testing.T, path string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := stability.WriteSnapshot(&buf, readStoreFile(t, path)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCmdGenExtend pins the incremental dataset pipeline end to end for
// the CLI: growing a dataset file in place with -extend (including a
// chained second extension) yields files that decode to exactly the store
// a one-shot longer generation produces, for both the binary append-segment
// path and the CSV append-rows path — and `attrition evaluate` output over
// the grown dataset matches the from-scratch one byte for byte.
func TestCmdGenExtend(t *testing.T) {
	dir := t.TempDir()
	common := []string{"-customers", "30", "-seed", "7"}

	for _, suffix := range []string{"stb", "csv"} {
		grown := filepath.Join(dir, "grow."+suffix)
		oneShot := filepath.Join(dir, "oneshot."+suffix)
		grownLabels := filepath.Join(dir, "grow-labels-"+suffix+".csv")
		oneShotLabels := filepath.Join(dir, "oneshot-labels-"+suffix+".csv")

		captureStdout(t, func() error {
			return cmdGen(append([]string{"-out", grown, "-months", "12"}, common...))
		})
		captureStdout(t, func() error {
			return cmdGen(append([]string{"-out", grown, "-months", "12", "-extend", "4"}, common...))
		})
		// Chained extension: the file is already 16 months long; the same
		// base flags fast-forward to it and append 2 more.
		captureStdout(t, func() error {
			return cmdGen(append([]string{"-out", grown, "-labels", grownLabels, "-months", "12", "-extend", "2"}, common...))
		})
		captureStdout(t, func() error {
			return cmdGen(append([]string{"-out", oneShot, "-months", "12"}, common...))
		})
		captureStdout(t, func() error {
			return cmdGen(append([]string{"-out", oneShot, "-labels", oneShotLabels, "-months", "12", "-extend", "6"}, common...))
		})

		if !bytes.Equal(storeFileBytes(t, grown), storeFileBytes(t, oneShot)) {
			t.Fatalf("%s: chained 4+2 month extension decodes differently from a one-shot 6-month extension", suffix)
		}
		evalGrown := captureStdout(t, func() error {
			return cmdEvaluate([]string{"-data", grown, "-labels", grownLabels})
		})
		evalOneShot := captureStdout(t, func() error {
			return cmdEvaluate([]string{"-data", oneShot, "-labels", oneShotLabels})
		})
		if evalGrown != evalOneShot {
			t.Fatalf("%s: evaluate output differs between grown and one-shot datasets", suffix)
		}
	}
}

// TestCmdGenExtendRejectsMismatch pins the safety check: -extend refuses
// to append to a file the flags do not regenerate.
func TestCmdGenExtendRejectsMismatch(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "r.csv")
	captureStdout(t, func() error {
		return cmdGen([]string{"-out", out, "-customers", "20", "-seed", "3", "-months", "12"})
	})
	err := cmdGen([]string{"-out", out, "-customers", "20", "-seed", "4", "-months", "12", "-extend", "2"})
	if err == nil {
		t.Fatal("-extend with a different seed accepted")
	}
	if err := cmdGen([]string{"-out", filepath.Join(dir, "absent.csv"), "-customers", "20", "-seed", "3", "-months", "12", "-extend", "2"}); err == nil {
		t.Fatal("-extend without an existing file accepted")
	}
}

// alertLines filters cmdMonitor output down to the alert lines.
func alertLines(out string) []string {
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "stability ") {
			lines = append(lines, l)
		}
	}
	return lines
}

// TestCmdMonitorStateResume pins the incremental monitor CLI: processing a
// base dataset with -state, growing the file in place, then resuming from
// the saved state emits exactly the alerts of one -state replay of the
// final file — the past is never rescored, and the saved watermark marks
// where feeding resumes.
func TestCmdMonitorStateResume(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "r.csv")
	common := []string{"-customers", "40", "-seed", "11"}
	captureStdout(t, func() error {
		return cmdGen(append([]string{"-out", data, "-months", "24"}, common...))
	})

	state := filepath.Join(dir, "mon.smn")
	run := func(statePath string) string {
		return captureStdout(t, func() error {
			return cmdMonitor([]string{"-data", data, "-state", statePath, "-beta", "0.6", "-shards", "3", "-max-show", "100000"})
		})
	}
	first := run(state)
	captureStdout(t, func() error {
		return cmdGen(append([]string{"-out", data, "-months", "24", "-extend", "4"}, common...))
	})
	second := run(state)
	if !strings.Contains(second, "resuming at window") {
		t.Fatalf("second run did not resume from state:\n%s", second)
	}

	oneShot := run(filepath.Join(dir, "fresh.smn"))
	got := append(alertLines(first), alertLines(second)...)
	want := alertLines(oneShot)
	if len(got) == 0 {
		t.Fatal("no alerts fired — test dataset too benign to pin anything")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental alert lines differ from one-shot replay:\nincremental (%d):\n%s\none-shot (%d):\n%s",
			len(got), strings.Join(got, "\n"), len(want), strings.Join(want, "\n"))
	}
	// The two state files must describe the same monitor.
	a, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "fresh.smn"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("incremental monitor state differs from one-shot replay state")
	}
}

// TestCmdMonitorStateMidMonthBoundary pins the mid-month resume contract
// the conservative watermark exists for: when the first file ends in the
// middle of a month (externally grown datasets do), receipts for that same
// month appended later must still be ingested on resume — the monitor may
// not close windows past the data frontier. The final state must equal a
// one-shot -state replay of the full file.
func TestCmdMonitorStateMidMonthBoundary(t *testing.T) {
	dir := t.TempDir()
	day := func(months, days int) time.Time {
		return time.Date(2012, time.May, 1, 10, 0, 0, 0, time.UTC).AddDate(0, months, days)
	}
	build := func(upToMonth, upToDay int) *stability.Store {
		b := stability.NewStoreBuilder()
		for id := stability.CustomerID(1); id <= 6; id++ {
			for m := 0; m <= upToMonth; m++ {
				for _, d := range []int{2, 9, 16, 23} {
					if m == upToMonth && d > upToDay {
						continue
					}
					if err := b.Add(id, day(m, d), []stability.ItemID{1, 2, stability.ItemID(id + 2)}, 5); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		return b.Build()
	}
	writeCSV := func(path string, st *stability.Store) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := stability.WriteReceiptsCSV(f, st); err != nil {
			t.Fatal(err)
		}
	}

	data := filepath.Join(dir, "r.csv")
	full := build(14, 23)        // 15 months, complete
	writeCSV(data, build(13, 9)) // ends mid-month: month 13 cut after day 9

	state := filepath.Join(dir, "mid.smn")
	run := func(statePath string) string {
		return captureStdout(t, func() error {
			return cmdMonitor([]string{"-data", data, "-state", statePath, "-beta", "0.99", "-warmup", "1", "-max-show", "100000"})
		})
	}
	first := run(state)
	writeCSV(data, full) // the file grows; months 13 (rest) and 14 arrive
	second := run(state)
	oneShot := run(filepath.Join(dir, "oneshot.smn"))

	got := append(alertLines(first), alertLines(second)...)
	want := alertLines(oneShot)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mid-month boundary lost or duplicated scoring:\nincremental:\n%s\none-shot:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	a, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "oneshot.smn"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("mid-month incremental state differs from one-shot replay state — receipts were dropped at the boundary")
	}
}
