// Command attrition is the end-user CLI of the stability library: generate
// datasets, inspect them, analyze individual customers, explain stability
// drops, and evaluate detection quality.
//
// Usage:
//
//	attrition gen      -out receipts.csv [-labels labels.csv] [-catalog catalog.csv] [-customers N] [-seed S]
//	attrition stats    -data receipts.csv
//	attrition analyze  -data receipts.csv -customer ID [-span 2] [-alpha 2]
//	attrition explain  -data receipts.csv -customer ID [-span 2] [-alpha 2] [-top 3] [-min-drop 0.05]
//	attrition evaluate -data receipts.csv -labels labels.csv [-span 2] [-alpha 2] [-month M]
//	attrition monitor  -data receipts.csv [-state mon.smn] [-follow -poll 2s] [-retention N]
//	attrition compact  -data receipts.stb [-evict-before YYYY-MM-DD]
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "evaluate":
		err = cmdEvaluate(os.Args[2:])
	case "monitor":
		err = cmdMonitor(os.Args[2:])
	case "compact":
		err = cmdCompact(os.Args[2:])
	case "segments":
		err = cmdSegments(os.Args[2:])
	case "help", "-h", "-help", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "attrition: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "attrition:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `attrition — individual-level customer attrition analysis (stability model)

subcommands:
  gen       generate a synthetic labelled dataset (CSV receipts + labels + catalog)
  stats     summarize a receipt dataset
  analyze   print one customer's stability trace
  explain   print one customer's stability drops and the blamed products
  evaluate  AUROC of defection detection against labels, per window
  monitor   replay a dataset as a live feed and print attrition alerts
            (-follow tails a growing snapshot file until SIGTERM)
  compact   rewrite a snapshot's appended segment chain as one segment,
            optionally evicting receipts older than a cutoff
  segments  rank gateway segments (whose loss explains defection) population-wide

run 'attrition <subcommand> -h' for flags.
`)
}
