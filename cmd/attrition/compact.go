package main

import (
	"flag"
	"fmt"
	"time"

	"github.com/gautrais/stability"
)

// cmdCompact rewrites a binary snapshot's segment chain — the file shape
// that incremental appends (gen -extend, WriteSnapshotDelta) grow one
// segment at a time — back into a single segment, optionally evicting
// receipts older than a cutoff. The output is byte-identical to writing
// the surviving receipts from scratch, and the rewrite is crash-safe: a
// kill at any point leaves either the old chain or the new file.
func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	var (
		data   = fs.String("data", "", "binary snapshot path to compact in place (required)")
		before = fs.String("evict-before", "", "drop receipts before this date (YYYY-MM-DD); empty keeps all")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("compact: -data is required")
	}
	var cutoff time.Time
	if *before != "" {
		t, err := time.Parse("2006-01-02", *before)
		if err != nil {
			return fmt.Errorf("compact: bad -evict-before %q: %w", *before, err)
		}
		cutoff = t.UTC()
	}
	stats, err := stability.CompactSnapshotFile(*data, cutoff)
	if err != nil {
		return err
	}
	fmt.Printf("compacted %s: %d segments -> 1, %d -> %d bytes\n",
		*data, stats.SegmentsBefore, stats.BytesBefore, stats.BytesAfter)
	if stats.ReceiptsBefore != stats.ReceiptsAfter {
		fmt.Printf("evicted %d of %d receipts (%d of %d customers dropped entirely)\n",
			stats.ReceiptsBefore-stats.ReceiptsAfter, stats.ReceiptsBefore,
			stats.CustomersBefore-stats.CustomersAfter, stats.CustomersBefore)
	}
	return nil
}
