package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gautrais/stability"
)

// cmdSegments aggregates the model's explanations over a dataset into the
// per-segment attrition ranking (gateway products). With -labels, only the
// defecting cohort is characterized; otherwise the whole population is.
func cmdSegments(args []string) error {
	fs := flag.NewFlagSet("segments", flag.ExitOnError)
	var (
		data    = fs.String("data", "", "receipt CSV/JSONL/snapshot path (required)")
		labels  = fs.String("labels", "", "labels CSV: restrict to the defecting cohort (optional)")
		catalog = fs.String("catalog", "", "catalog CSV for segment names (optional)")
		span    = fs.Int("span", 2, "window span in months")
		alpha   = fs.Float64("alpha", 2, "significance base α")
		minDrop = fs.Float64("min-drop", 0.05, "stability decrease that counts as a drop")
		topJ    = fs.Int("top-j", 3, "blamed segments aggregated per drop")
		topN    = fs.Int("top", 20, "segments to print")
		workers = fs.Int("workers", 0, "analysis worker pool size (0 = all CPUs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := loadStore(*data)
	if err != nil {
		return err
	}
	min, max, ok := st.TimeRange()
	if !ok {
		return fmt.Errorf("dataset is empty")
	}
	grid, err := stability.NewGrid(min, *span)
	if err != nil {
		return err
	}
	model, err := stability.NewModel(stability.Options{Alpha: *alpha})
	if err != nil {
		return err
	}

	include := func(stability.CustomerID) bool { return true }
	if *labels != "" {
		lf, err := os.Open(*labels)
		if err != nil {
			return err
		}
		recs, err := stability.ReadLabelsCSV(lf)
		lf.Close()
		if err != nil {
			return err
		}
		defecting := make(map[stability.CustomerID]bool, len(recs))
		for _, l := range recs {
			if l.Cohort == stability.CohortDefecting {
				defecting[l.Customer] = true
			}
		}
		include = func(id stability.CustomerID) bool { return defecting[id] }
	}
	var histories []stability.History
	st.Each(func(h stability.History) bool {
		if include(h.Customer) {
			histories = append(histories, h)
		}
		return true
	})
	if len(histories) == 0 {
		return fmt.Errorf("no customers selected")
	}

	opts := stability.CharacterizeOptions{MinDrop: *minDrop, TopJ: *topJ, Workers: *workers}
	rep, err := stability.Characterize(model, histories, grid, grid.Index(max), opts)
	if err != nil {
		return err
	}

	namer := func(id stability.ItemID) string { return fmt.Sprintf("%d", id) }
	if *catalog != "" {
		cf, err := os.Open(*catalog)
		if err != nil {
			return err
		}
		cat, err := stability.ReadCatalogCSV(cf)
		cf.Close()
		if err != nil {
			return err
		}
		namer = cat.SegmentName
	}
	fmt.Printf("gateway segments over %d customers (%d with drops, %d drop events):\n\n",
		rep.Customers, rep.WithDrops, rep.DropEvents)
	rep.Table(*topN, namer).Render(os.Stdout)
	return nil
}
