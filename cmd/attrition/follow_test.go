package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/gautrais/stability"
)

// TestCmdCompact pins the compact subcommand: a snapshot grown by -extend
// (a multi-segment chain) compacts to exactly the bytes of a from-scratch
// snapshot of the same receipts, and -evict-before drops the old prefix.
func TestCmdCompact(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "r.stb")
	common := []string{"-customers", "30", "-seed", "7"}
	captureStdout(t, func() error {
		return cmdGen(append([]string{"-out", data, "-months", "12"}, common...))
	})
	captureStdout(t, func() error {
		return cmdGen(append([]string{"-out", data, "-months", "12", "-extend", "4"}, common...))
	})
	f, err := os.Open(data)
	if err != nil {
		t.Fatal(err)
	}
	full, err := stability.ReadSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() error { return cmdCompact([]string{"-data", data}) })
	if !strings.Contains(out, "2 segments -> 1") {
		t.Fatalf("unexpected compact output: %s", out)
	}
	var want bytes.Buffer
	if err := stability.WriteSnapshot(&want, full); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got) {
		t.Fatal("compacted file differs from a from-scratch snapshot")
	}

	// Evict everything before a mid-stream date; compare against the
	// library-level eviction of the same store.
	cut := time.Date(2013, time.January, 1, 0, 0, 0, 0, time.UTC)
	captureStdout(t, func() error {
		return cmdCompact([]string{"-data", data, "-evict-before", "2013-01-01"})
	})
	want.Reset()
	if err := stability.WriteSnapshot(&want, full.EvictBefore(cut)); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got) {
		t.Fatal("evicting compaction differs from EvictBefore + WriteSnapshot")
	}

	if err := cmdCompact([]string{"-data", data, "-evict-before", "eleventy"}); err == nil {
		t.Fatal("bad -evict-before date accepted")
	}
	if err := cmdCompact([]string{}); err == nil {
		t.Fatal("missing -data accepted")
	}
}

// TestCmdMonitorFollow drives monitor -follow end to end: a follow session
// that watches the snapshot grow (the file is extended mid-session, while
// polls race the append) and is stopped by SIGTERM must print exactly the
// alerts of a one-shot -state replay of the final file, and persist the
// identical state bytes.
func TestCmdMonitorFollow(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "r.stb")
	common := []string{"-customers", "40", "-seed", "11"}
	captureStdout(t, func() error {
		return cmdGen(append([]string{"-out", data, "-months", "24"}, common...))
	})

	followState := filepath.Join(dir, "follow.smn")
	followOut := captureStdout(t, func() error {
		// The dataset is extended in place while the follower polls, then
		// the session is signalled to stop. Generous margins: dozens of
		// 10ms polls fit between the grow and the signal.
		grow := time.AfterFunc(300*time.Millisecond, func() {
			err := cmdGen(append([]string{"-out", data, "-months", "24", "-extend", "4"}, common...))
			if err != nil {
				t.Error(err)
			}
		})
		defer grow.Stop()
		stop := time.AfterFunc(1200*time.Millisecond, func() {
			_ = syscall.Kill(os.Getpid(), syscall.SIGTERM)
		})
		defer stop.Stop()
		return cmdMonitor([]string{
			"-data", data, "-follow", "-poll", "10ms",
			"-state", followState, "-beta", "0.6", "-shards", "3", "-max-show", "100000",
		})
	})
	if !strings.Contains(followOut, "state saved to") {
		t.Fatalf("follow session did not persist state:\n%s", followOut)
	}

	oneState := filepath.Join(dir, "oneshot.smn")
	oneOut := captureStdout(t, func() error {
		return cmdMonitor([]string{
			"-data", data, "-state", oneState, "-beta", "0.6", "-shards", "3", "-max-show", "100000",
		})
	})

	got, want := alertLines(followOut), alertLines(oneOut)
	if len(want) == 0 {
		t.Fatal("no alerts fired — test dataset too benign to pin anything")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("follow alerts differ from one-shot replay:\nfollow (%d):\n%s\none-shot (%d):\n%s",
			len(got), strings.Join(got, "\n"), len(want), strings.Join(want, "\n"))
	}
	a, err := os.ReadFile(followState)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(oneState)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("follow state differs from one-shot replay state")
	}
}

// TestCmdMonitorFollowNoData: a follow session stopped before the file
// ever appears exits cleanly without writing state.
func TestCmdMonitorFollowNoData(t *testing.T) {
	dir := t.TempDir()
	out := captureStdout(t, func() error {
		stop := time.AfterFunc(100*time.Millisecond, func() {
			_ = syscall.Kill(os.Getpid(), syscall.SIGTERM)
		})
		defer stop.Stop()
		return cmdMonitor([]string{
			"-data", filepath.Join(dir, "never.stb"), "-follow", "-poll", "5ms",
			"-state", filepath.Join(dir, "s.smn"),
		})
	})
	if !strings.Contains(out, "stopped before any data arrived") {
		t.Fatalf("unexpected output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "s.smn")); err == nil {
		t.Fatal("state written despite no data")
	}
}
