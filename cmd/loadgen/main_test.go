package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestLoadgenSelfServe runs the full pipeline — generate, replay over
// concurrent connections, measure, verify against the sequential replay —
// against an in-process daemon. The horizon is long enough that alerts
// fire, so the alert-stream comparison is not vacuous.
func TestLoadgenSelfServe(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-customers", "40", "-months", "16", "-conns", "3", "-batch", "75",
		"-queries", "60", "-shards", "4",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen failed: %v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"receipts/sec",
		"ingest latency",
		"query latency",
		"alert stream:",
		"exact match",
		"verification: daemon matches sequential replay",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "alert stream: 0 alerts") {
		t.Error("no alerts fired; the verification run is vacuous")
	}
}

// TestLoadgenSelfServeRetention runs the pipeline with a retention horizon
// and an eviction sweep enabled: verification must still be exact, and the
// eviction counters must match the sequential replay.
func TestLoadgenSelfServeRetention(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-customers", "40", "-months", "24", "-conns", "3", "-batch", "75",
		"-queries", "60", "-shards", "4", "-retention", "2", "-ttl-interval", "5ms",
		"-churn", "0.3",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen with retention failed: %v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "eviction:") || !strings.Contains(s, "verification: daemon matches sequential replay") {
		t.Errorf("output missing eviction verification:\n%s", s)
	}
	if strings.Contains(s, "eviction: 0 customers evicted") {
		t.Error("retention horizon evicted nobody; the eviction verification is vacuous")
	}
}

// TestLoadgenQueryMix runs the pipeline with batch queries interleaved at
// every month barrier: each NDJSON answer must match the shadow sequential
// replay exactly, and the final verification must still pass.
func TestLoadgenQueryMix(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-customers", "40", "-months", "16", "-conns", "3", "-batch", "75",
		"-queries", "60", "-shards", "4", "-query-mix",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen -query-mix failed: %v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"query-mix:", "batch queries", "exact match",
		"verification: daemon matches sequential replay",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "query-mix: 0 batch queries") || strings.Contains(s, "(0 scored answers)") {
		t.Errorf("query-mix issued no verified scores; the run is vacuous:\n%s", s)
	}
}

// TestBackoffWait pins the deterministic 429 backoff schedule.
func TestBackoffWait(t *testing.T) {
	cases := []struct {
		hint    time.Duration
		attempt int
		want    time.Duration
	}{
		{0, 0, 50 * time.Millisecond},            // no hint: fixed default
		{0, 2, 200 * time.Millisecond},           // default doubles per attempt
		{time.Second, 0, time.Second},            // server hint honoured
		{time.Second, 1, maxRetryWait},           // doubling is capped
		{time.Second, 10, maxRetryWait},          // stays capped
		{10 * time.Second, 0, maxRetryWait},      // oversized hint capped
		{-time.Second, 0, 50 * time.Millisecond}, // nonsense hint: default
	}
	for _, tc := range cases {
		if got := backoffWait(tc.hint, tc.attempt); got != tc.want {
			t.Errorf("backoffWait(%v, %d) = %v, want %v", tc.hint, tc.attempt, got, tc.want)
		}
	}
}

func TestLoadgenFlagValidation(t *testing.T) {
	if _, err := parseFlags([]string{"-conns", "0"}); err == nil {
		t.Error("accepted -conns 0")
	}
	if _, err := parseFlags([]string{"-nope"}); err == nil {
		t.Error("accepted unknown flag")
	}
	if _, err := parseFlags([]string{"-query-mix", "-follow"}); err == nil {
		t.Error("accepted -query-mix with -follow")
	}
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.customers != 400 || o.conns != 4 || !o.verify {
		t.Errorf("defaults: %+v", o)
	}
}

func TestHistogram(t *testing.T) {
	h := &hist{}
	if h.String() != "no samples" {
		t.Errorf("empty hist String = %q", h.String())
	}
	if h.quantile(0.5) != 0 {
		t.Error("empty hist quantile != 0")
	}
	for i := 0; i < 90; i++ {
		h.observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(10 * time.Millisecond)
	}
	if q := h.quantile(0.50); q > time.Millisecond {
		t.Errorf("p50 = %v, want within the 100µs bucket range", q)
	}
	if q := h.quantile(0.99); q < 8*time.Millisecond {
		t.Errorf("p99 = %v, want in the 10ms bucket", q)
	}
	if h.max != 10*time.Millisecond {
		t.Errorf("max = %v", h.max)
	}
	other := &hist{}
	other.observe(20 * time.Millisecond)
	h.merge(other)
	if h.count != 101 || h.max != 20*time.Millisecond {
		t.Errorf("after merge: count=%d max=%v", h.count, h.max)
	}
}
