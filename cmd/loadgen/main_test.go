package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestLoadgenSelfServe runs the full pipeline — generate, replay over
// concurrent connections, measure, verify against the sequential replay —
// against an in-process daemon. The horizon is long enough that alerts
// fire, so the alert-stream comparison is not vacuous.
func TestLoadgenSelfServe(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-customers", "40", "-months", "16", "-conns", "3", "-batch", "75",
		"-queries", "60", "-shards", "4",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen failed: %v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"receipts/sec",
		"ingest latency",
		"query latency",
		"alert stream:",
		"exact match",
		"verification: daemon matches sequential replay",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "alert stream: 0 alerts") {
		t.Error("no alerts fired; the verification run is vacuous")
	}
}

func TestLoadgenFlagValidation(t *testing.T) {
	if _, err := parseFlags([]string{"-conns", "0"}); err == nil {
		t.Error("accepted -conns 0")
	}
	if _, err := parseFlags([]string{"-nope"}); err == nil {
		t.Error("accepted unknown flag")
	}
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.customers != 400 || o.conns != 4 || !o.verify {
		t.Errorf("defaults: %+v", o)
	}
}

func TestHistogram(t *testing.T) {
	h := &hist{}
	if h.String() != "no samples" {
		t.Errorf("empty hist String = %q", h.String())
	}
	if h.quantile(0.5) != 0 {
		t.Error("empty hist quantile != 0")
	}
	for i := 0; i < 90; i++ {
		h.observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(10 * time.Millisecond)
	}
	if q := h.quantile(0.50); q > time.Millisecond {
		t.Errorf("p50 = %v, want within the 100µs bucket range", q)
	}
	if q := h.quantile(0.99); q < 8*time.Millisecond {
		t.Errorf("p99 = %v, want in the 10ms bucket", q)
	}
	if h.max != 10*time.Millisecond {
		t.Errorf("max = %v", h.max)
	}
	other := &hist{}
	other.observe(20 * time.Millisecond)
	h.merge(other)
	if h.count != 101 || h.max != 20*time.Millisecond {
		t.Errorf("after merge: count=%d max=%v", h.count, h.max)
	}
}
