// Command loadgen load-tests an attritiond daemon: it synthesizes a
// labelled retail dataset, replays it month by month over concurrent
// connections as batched POST /v1/receipts calls, measures ingestion and
// query latency, and then verifies the daemon's answers — per-customer
// stabilities, the alert stream, and the /metrics counters — against a
// local sequential Monitor replay of the same feed.
//
//	loadgen -addr http://localhost:8080 -customers 400 -months 12
//	loadgen -customers 400 -months 12        # self-serve: in-process daemon
//
// With no -addr, loadgen spins up an in-process daemon (httptest) so
// `make loadtest` needs no running server. Months are replayed in phase —
// all connections finish month m before any posts month m+1 — because the
// daemon's watermark closes windows as months advance, and a connection
// racing months ahead would turn slower connections' receipts stale. The
// replayed feed is deterministic in -seed, so the verification step is
// exact, not statistical: any mismatch exits non-zero.
//
// With -query-mix, loadgen interleaves POST /v1/stability:batch queries
// with the ingestion replay: at every month barrier (once the daemon has
// drained the month) it batch-queries every customer and requires each
// answer to match a shadow sequential replay exactly — the read path is
// exercised while the write path is hot, and the comparison stays exact
// because scoring only happens at deterministic window-close barriers.
//
// With -follow, the in-process daemon ingests by tailing an STB1 snapshot
// chain instead of HTTP: loadgen plays the external snapshot writer,
// appending one segment per -batch receipts from a single writer (POST
// /v1/receipts answers 409 in this mode). Halfway through, the chain is
// compacted in place (-follow-compact), driving the daemon's follower
// through its resync protocol mid-load; verification afterwards is the
// same exact comparison against the sequential replay.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/gautrais/stability"
	"github.com/gautrais/stability/internal/population"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// now reads the wall clock for latency and throughput telemetry.
//
//detlint:ignore R2 load-test latency/throughput measurement; durations are reported to the operator, never fed into scored output
func now() time.Time { return time.Now() }

type options struct {
	addr      string
	customers int
	months    int
	seed      int64
	conns     int
	batch     int
	queries   int
	span      int
	alpha     float64
	beta      float64
	topJ      int
	warmup    int
	shards    int
	retention int
	ttl       time.Duration
	churn     float64
	verify    bool

	queryMix bool

	follow        bool
	followPoll    time.Duration
	followCompact bool
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.addr, "addr", "", "daemon base URL (e.g. http://localhost:8080); empty runs an in-process daemon")
	fs.IntVar(&o.customers, "customers", 400, "synthetic customers")
	fs.IntVar(&o.months, "months", 12, "synthetic months")
	fs.Int64Var(&o.seed, "seed", 1, "dataset seed (verification is exact for any seed)")
	fs.IntVar(&o.conns, "conns", 4, "concurrent ingesting connections")
	fs.IntVar(&o.batch, "batch", 200, "receipts per POST")
	fs.IntVar(&o.queries, "queries", 400, "stability queries to issue after ingestion")
	fs.IntVar(&o.span, "span", 2, "window span in months (must match the daemon)")
	fs.Float64Var(&o.alpha, "alpha", 2, "significance base α (must match the daemon)")
	fs.Float64Var(&o.beta, "beta", 0.6, "loyalty threshold (must match the daemon)")
	fs.IntVar(&o.topJ, "top", 3, "blamed products per alert (must match the daemon)")
	fs.IntVar(&o.warmup, "warmup", 4, "warm-up windows (must match the daemon)")
	fs.IntVar(&o.shards, "shards", 0, "shards for the in-process daemon; 0 = GOMAXPROCS")
	fs.IntVar(&o.retention, "retention", 0, "retention horizon in windows (must match the daemon); 0 keeps everyone forever")
	fs.DurationVar(&o.ttl, "ttl-interval", 0, "idle-customer eviction sweep period for the in-process daemon; 0 disables")
	fs.Float64Var(&o.churn, "churn", 0, "fraction of customers silenced halfway through the feed (gives -retention something to evict; 0 disables)")
	fs.BoolVar(&o.verify, "verify", true, "verify daemon answers against a sequential replay")
	fs.BoolVar(&o.queryMix, "query-mix", false, "interleave POST /v1/stability:batch queries with ingestion at every month barrier, exact-verifying each answer against a shadow sequential replay")
	fs.BoolVar(&o.follow, "follow", false, "drive the in-process daemon by tailing an STB1 chain instead of POSTing (needs empty -addr)")
	fs.DurationVar(&o.followPoll, "follow-poll", 2*time.Millisecond, "follow-mode poll period of the in-process daemon")
	fs.BoolVar(&o.followCompact, "follow-compact", true, "compact the tailed chain halfway through a -follow run, forcing a live resync")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.conns < 1 || o.batch < 1 {
		return o, fmt.Errorf("need -conns >= 1 and -batch >= 1")
	}
	if o.follow && o.addr != "" {
		return o, fmt.Errorf("-follow drives an in-process daemon; drop -addr")
	}
	if o.queryMix && o.follow {
		return o, fmt.Errorf("-query-mix interleaves with HTTP ingestion; drop -follow")
	}
	if o.follow && o.followCompact && o.retention > 0 {
		// A resync rebuilds the monitor and carries evictions forward as a
		// base count, so the eviction comparison against one sequential
		// replay is no longer exact. Keep the modes separate.
		return o, fmt.Errorf("-follow-compact needs -retention 0 (use -follow-compact=false with a retention horizon)")
	}
	return o, nil
}

// receipt is one wire receipt of the replayed feed.
type receipt struct {
	Customer uint64    `json:"customer"`
	Time     time.Time `json:"time"`
	Items    []uint32  `json:"items"`
}

// hist is a power-of-two-microsecond latency histogram.
type hist struct {
	buckets [40]uint64
	count   uint64
	total   time.Duration
	max     time.Duration
}

func (h *hist) observe(d time.Duration) {
	h.buckets[bits.Len64(uint64(d.Microseconds()))]++
	h.count++
	h.total += d
	if d > h.max {
		h.max = d
	}
}

func (h *hist) merge(o *hist) {
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
	h.count += o.count
	h.total += o.total
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the upper bound of the bucket holding quantile q.
func (h *hist) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	seen := uint64(0)
	for i, n := range h.buckets {
		seen += n
		if seen > target {
			return time.Duration(uint64(1)<<i) * time.Microsecond
		}
	}
	return h.max
}

func (h *hist) String() string {
	if h.count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("p50<=%v p90<=%v p99<=%v max=%v mean=%v",
		h.quantile(0.50), h.quantile(0.90), h.quantile(0.99), h.max,
		(h.total / time.Duration(h.count)).Round(time.Microsecond))
}

func run(args []string, out io.Writer) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}

	cfg := stability.DefaultSampleConfig()
	cfg.Seed = o.seed
	cfg.Customers = o.customers
	cfg.Months = o.months
	cfg.OnsetMonth = o.months * 2 / 3
	ds, err := stability.GenerateSample(cfg)
	if err != nil {
		return err
	}
	feed, grid, err := sortedFeed(ds, o.span)
	if err != nil {
		return err
	}
	if o.churn > 0 {
		before := len(feed)
		feed = applyChurn(feed, grid, o.churn, o.months)
		fmt.Fprintf(out, "churn: silenced ~%.0f%% of customers after month %d (%d receipts dropped)\n",
			o.churn*100, o.months/2, before-len(feed))
	}
	fmt.Fprintf(out, "dataset: %d customers, %d receipts, %d months (seed %d)\n",
		ds.Store.NumCustomers(), len(feed), o.months, o.seed)

	var followPath string
	if o.follow {
		dir, err := os.MkdirTemp("", "loadgen-follow")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		followPath = filepath.Join(dir, "feed.stb")
	}

	base := o.addr
	var srv *stability.Server
	if base == "" {
		s, err := stability.NewServer(stability.ServerConfig{
			Monitor: stability.MonitorConfig{
				Grid:             grid,
				Model:            stability.Options{Alpha: o.alpha},
				Beta:             o.beta,
				TopJ:             o.topJ,
				WarmupWindows:    o.warmup,
				RetentionWindows: o.retention,
			},
			Shards:         o.shards,
			TTLInterval:    o.ttl,
			FollowPath:     followPath,
			FollowInterval: o.followPoll,
		})
		if err != nil {
			return err
		}
		srv = s
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer s.Close()
		base = ts.URL
		fmt.Fprintf(out, "self-serve daemon at %s (%d shards)\n", base, o.shards)
	}
	base = strings.TrimSuffix(base, "/")

	// How many receipts the daemon must count as ingested: a mid-run
	// compaction makes the follower replay the whole chain (cut receipts at
	// that point) through a fresh monitor, so they are counted twice.
	wantIngested := uint64(len(feed))
	if o.follow {
		cut, elapsed, err := followReplay(base, followPath, feed, o, out)
		if err != nil {
			return err
		}
		wantIngested += uint64(cut)
		rate := float64(len(feed)) / elapsed.Seconds()
		fmt.Fprintf(out, "follow: %d receipts appended in %v = %.0f receipts/sec through the tailed chain\n",
			len(feed), elapsed.Round(time.Millisecond), rate)
	} else {
		var mix *queryMixer
		if o.queryMix {
			mix, err = newQueryMixer(base, grid, ds.Store.Customers(), o)
			if err != nil {
				return err
			}
		}
		ingestHist, elapsed, retries, err := replay(base, feed, grid, o, mix)
		if err != nil {
			return err
		}
		rate := float64(len(feed)) / elapsed.Seconds()
		fmt.Fprintf(out, "ingest: %d receipts in %v over %d conns = %.0f receipts/sec (%d retries after 429)\n",
			len(feed), elapsed.Round(time.Millisecond), o.conns, rate, retries)
		fmt.Fprintf(out, "ingest latency per POST (%d receipts each): %s\n", o.batch, ingestHist)
		if mix != nil {
			fmt.Fprintf(out, "query-mix: %d batch queries (%d scored answers) interleaved with ingestion, exact match\n",
				mix.batches, mix.scores)
			fmt.Fprintf(out, "query-mix batch latency: %s\n", mix.hist)
		}
	}

	if err := awaitDrain(base, wantIngested); err != nil {
		return err
	}
	if o.follow {
		var m metricsSnapshot
		if err := getJSON(base, "/metrics", &m); err != nil {
			return err
		}
		if o.followCompact && m.FollowResyncs == 0 {
			return fmt.Errorf("chain was compacted mid-run but the daemon never resynced")
		}
		fmt.Fprintf(out, "follow: %d polls, %d resyncs\n", m.FollowPolls, m.FollowResyncs)
	}

	ids := ds.Store.Customers()
	queryHist, err := queryStabilities(base, ids, o)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "query latency (%d GETs): %s\n", queryHist.count, queryHist)

	if o.verify {
		if err := verify(base, feed, grid, ids, o, wantIngested, out); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Fprintln(out, "verification: daemon matches sequential replay")
	}
	if srv != nil {
		if err := srv.Close(); err != nil {
			return err
		}
	}
	return nil
}

// applyChurn silences a deterministic fraction of customers (by id
// residue) after the feed's halfway month. The synthetic defectors drop
// product segments but keep shopping, so without churn no customer ever
// goes fully silent and a retention horizon has nothing to evict.
func applyChurn(feed []receipt, grid stability.Grid, frac float64, months int) []receipt {
	cutMonth := months / 2
	silenced := uint64(frac * 100)
	out := feed[:0]
	for _, rc := range feed {
		if rc.Customer%100 < silenced && grid.MonthIndex(rc.Time) > cutMonth {
			continue
		}
		out = append(out, rc)
	}
	return out
}

// sortedFeed flattens the dataset into one time-sorted receipt slice and
// anchors the window grid at the earliest receipt.
func sortedFeed(ds *stability.SampleDataset, span int) ([]receipt, stability.Grid, error) {
	min, _, ok := ds.Store.TimeRange()
	if !ok {
		return nil, stability.Grid{}, fmt.Errorf("generated dataset is empty")
	}
	grid, err := stability.NewGrid(min, span)
	if err != nil {
		return nil, stability.Grid{}, err
	}
	var feed []receipt
	ds.Store.Each(func(h stability.History) bool {
		for _, r := range h.Receipts {
			items := make([]uint32, len(r.Items))
			for i, it := range r.Items {
				items[i] = uint32(it)
			}
			feed = append(feed, receipt{Customer: uint64(h.Customer), Time: r.Time, Items: items})
		}
		return true
	})
	sort.SliceStable(feed, func(i, j int) bool { return feed[i].Time.Before(feed[j].Time) })
	return feed, grid, nil
}

// replay posts the feed month by month: each month's receipts are
// partitioned by customer across o.conns workers (preserving per-customer
// order within the month) and the month boundary is a barrier, so the
// daemon's watermark can never race ahead of a slow connection. A non-nil
// mix issues exact-verified batch stability queries at each barrier.
func replay(base string, feed []receipt, grid stability.Grid, o options, mix *queryMixer) (*hist, time.Duration, uint64, error) {
	var months [][]receipt
	for _, rc := range feed {
		m := grid.MonthIndex(rc.Time)
		for len(months) <= m {
			months = append(months, nil)
		}
		months[m] = append(months[m], rc)
	}
	agg := &hist{}
	var retries atomic.Uint64
	start := now()
	for m, month := range months {
		if len(month) == 0 {
			continue
		}
		parts := make([][]receipt, o.conns)
		for _, rc := range month {
			w := int(rc.Customer % uint64(o.conns))
			parts[w] = append(parts[w], rc)
		}
		results, err := population.Map(o.conns, population.Options{Workers: o.conns}, func(w int) (*hist, error) {
			h := &hist{}
			part := parts[w]
			for lo := 0; lo < len(part); lo += o.batch {
				hi := lo + o.batch
				if hi > len(part) {
					hi = len(part)
				}
				if err := postBatch(base, part[lo:hi], h, &retries); err != nil {
					return nil, fmt.Errorf("month %d conn %d: %w", m, w, err)
				}
			}
			return h, nil
		})
		if err != nil {
			return nil, 0, 0, err
		}
		for _, h := range results {
			agg.merge(h)
		}
		if mix != nil {
			if err := mix.month(month); err != nil {
				return nil, 0, 0, fmt.Errorf("query-mix after month %d: %w", m, err)
			}
		}
	}
	return agg, now().Sub(start), retries.Load(), nil
}

// queryMixer interleaves batch stability queries with ingestion: at every
// month barrier it waits for the daemon to drain the month, shadow-replays
// the same receipts through a local sequential Monitor, then POSTs
// /v1/stability:batch for every customer and requires each NDJSON row to
// match the shadow monitor bit for bit. Month barriers are the points
// where the daemon's state is a deterministic function of the feed (within
// a month receipts race across connections, but window scoring happens
// only at close barriers), so the comparison is exact, not statistical.
type queryMixer struct {
	base        string
	grid        stability.Grid
	mon         *stability.Monitor
	ids         []stability.CustomerID
	chunk       int
	posted      uint64
	maxMonth    int
	lastClosedK int
	batches     int
	scores      int
	hist        *hist
}

func newQueryMixer(base string, grid stability.Grid, ids []stability.CustomerID, o options) (*queryMixer, error) {
	mon, err := stability.NewMonitor(stability.MonitorConfig{
		Grid:             grid,
		Model:            stability.Options{Alpha: o.alpha},
		Beta:             o.beta,
		TopJ:             o.topJ,
		WarmupWindows:    o.warmup,
		RetentionWindows: o.retention,
	})
	if err != nil {
		return nil, err
	}
	return &queryMixer{
		base: base, grid: grid, mon: mon, ids: ids,
		chunk: o.batch, maxMonth: -1, lastClosedK: -1, hist: &hist{},
	}, nil
}

// month absorbs one fully-posted month: shadow-replay, drain, query, compare.
func (x *queryMixer) month(month []receipt) error {
	for _, rc := range month {
		if m := x.grid.MonthIndex(rc.Time); m > x.maxMonth {
			x.maxMonth = m
			if closeK := x.grid.Index(x.grid.Origin().AddDate(0, m, 0)) - 1; closeK > x.lastClosedK {
				x.mon.CloseThrough(closeK)
				x.lastClosedK = closeK
			}
		}
		items := make([]stability.ItemID, len(rc.Items))
		for i, it := range rc.Items {
			items[i] = stability.ItemID(it)
		}
		if _, err := x.mon.Ingest(stability.CustomerID(rc.Customer), rc.Time, stability.NewBasket(items)); err != nil {
			return err
		}
	}
	x.posted += uint64(len(month))
	if err := awaitDrain(x.base, x.posted); err != nil {
		return err
	}
	for lo := 0; lo < len(x.ids); lo += x.chunk {
		hi := lo + x.chunk
		if hi > len(x.ids) {
			hi = len(x.ids)
		}
		if err := x.queryChunk(x.ids[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// queryChunk posts one NDJSON batch and verifies every row positionally
// against the shadow monitor. Scored rows must match value and window
// exactly; unscored customers must come back as error rows and vice versa.
func (x *queryMixer) queryChunk(ids []stability.CustomerID) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, id := range ids {
		if err := enc.Encode(struct {
			Customer uint64 `json:"customer"`
		}{uint64(id)}); err != nil {
			return err
		}
	}
	t0 := now()
	resp, err := http.Post(x.base+"/v1/stability:batch", "application/x-ndjson", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	x.hist.observe(now().Sub(t0))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/stability:batch: status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	for _, id := range ids {
		var row struct {
			Customer  uint64  `json:"customer"`
			Stability float64 `json:"stability"`
			Window    int     `json:"window"`
			Error     string  `json:"error"`
		}
		if err := dec.Decode(&row); err != nil {
			return fmt.Errorf("batch row for customer %d: %w", id, err)
		}
		wantV, wantK, wantOK := x.mon.Stability(id)
		if row.Error != "" {
			if wantOK {
				return fmt.Errorf("customer %d: daemon says unscored, shadow replay says %v@%d", id, wantV, wantK)
			}
			continue
		}
		if !wantOK {
			return fmt.Errorf("customer %d: daemon says %v@%d, shadow replay says unscored", id, row.Stability, row.Window)
		}
		if row.Customer != uint64(id) || row.Stability != wantV || row.Window != wantK {
			return fmt.Errorf("customer %d: daemon says customer=%d %v@%d, shadow replay says %v@%d",
				id, row.Customer, row.Stability, row.Window, wantV, wantK)
		}
		x.scores++
	}
	x.batches++
	return nil
}

// followReplay plays the external snapshot writer of a follow-mode
// deployment: it appends the feed to path as one STB1 segment per -batch
// receipts from a single writer. With -follow-compact it pauses once past
// the halfway point, waits for the daemon's follower to catch up, compacts
// the chain in place — shrinking (or rewriting) the file underneath the
// follower, which must resync without losing or duplicating output — and
// keeps appending. Returns how many receipts the daemon had consumed at
// the compaction point (0 when none happened).
func followReplay(base, path string, feed []receipt, o options, out io.Writer) (int, time.Duration, error) {
	appendSegment := func(chunk []receipt) error {
		b := stability.NewStoreBuilder()
		for _, rc := range chunk {
			items := make([]stability.ItemID, len(rc.Items))
			for i, it := range rc.Items {
				items[i] = stability.ItemID(it)
			}
			if err := b.Add(stability.CustomerID(rc.Customer), rc.Time, items, 0); err != nil {
				return err
			}
		}
		var buf strings.Builder
		if err := stability.WriteSnapshot(&buf, b.Build()); err != nil {
			return err
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		if _, err := io.WriteString(f, buf.String()); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	cut := 0
	start := now()
	for lo := 0; lo < len(feed); lo += o.batch {
		hi := lo + o.batch
		if hi > len(feed) {
			hi = len(feed)
		}
		if err := appendSegment(feed[lo:hi]); err != nil {
			return cut, 0, err
		}
		if o.followCompact && cut == 0 && hi >= len(feed)/2 && hi < len(feed) {
			// Let the follower consume everything written so far, so the
			// expected post-resync receipt count is exact, then compact.
			if err := awaitDrain(base, uint64(hi)); err != nil {
				return cut, 0, err
			}
			stats, err := stability.CompactSnapshotFile(path, time.Time{})
			if err != nil {
				return cut, 0, err
			}
			cut = hi
			fmt.Fprintf(out, "compaction mid-tail: %d segments -> 1, %d -> %d bytes under a live follower\n",
				stats.SegmentsBefore, stats.BytesBefore, stats.BytesAfter)
		}
	}
	return cut, now().Sub(start), nil
}

// 429 handling: a rejecting daemon (-policy reject) answers queue-full with
// Retry-After, and loadgen is exactly the kind of client that must honour
// it. The backoff is deterministic — the server's hint, doubled per
// consecutive rejection of the same batch, capped — so a load test is
// reproducible run to run.
const (
	// maxRetryWait caps one backoff sleep no matter what the server hints.
	maxRetryWait = 2 * time.Second
	// max429Retries bounds consecutive rejections of one batch before the
	// load test gives up; with the cap above that is at most ~100s stalled.
	max429Retries = 50
)

// backoffWait is the deterministic backoff for the attempt-th consecutive
// 429 (0-based): the server's hint left-shifted per attempt, capped.
func backoffWait(hint time.Duration, attempt int) time.Duration {
	if hint <= 0 {
		hint = 50 * time.Millisecond
	}
	for i := 0; i < attempt && hint < maxRetryWait; i++ {
		hint *= 2
	}
	if hint > maxRetryWait {
		hint = maxRetryWait
	}
	return hint
}

func postBatch(base string, batch []receipt, h *hist, retries *atomic.Uint64) error {
	body, err := json.Marshal(struct {
		Receipts []receipt `json:"receipts"`
	}{batch})
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		t0 := now()
		resp, err := http.Post(base+"/v1/receipts", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return err
		}
		h.observe(now().Sub(t0))
		if resp.StatusCode == http.StatusTooManyRequests {
			hint := retryAfterHint(resp)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if attempt >= max429Retries {
				return fmt.Errorf("POST /v1/receipts: still 429 after %d retries", attempt)
			}
			retries.Add(1)
			time.Sleep(backoffWait(hint, attempt))
			continue
		}
		var ir struct {
			Accepted int `json:"accepted"`
			Shed     int `json:"shed"`
			Stale    int `json:"stale"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("POST /v1/receipts: decode status-%d body: %w", resp.StatusCode, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /v1/receipts: status %d", resp.StatusCode)
		}
		if ir.Accepted != len(batch) {
			return fmt.Errorf("POST /v1/receipts: accepted %d of %d (shed %d, stale %d)",
				ir.Accepted, len(batch), ir.Shed, ir.Stale)
		}
		return nil
	}
}

// retryAfterHint reads the server's Retry-After header (whole seconds,
// the form attritiond sends); 0 means no usable hint.
func retryAfterHint(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		var secs int
		if _, err := fmt.Sscanf(s, "%d", &secs); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// metricsSnapshot is the subset of GET /metrics loadgen reads.
type metricsSnapshot struct {
	ReceiptsIngested  uint64 `json:"receipts_ingested"`
	ReceiptsShed      uint64 `json:"receipts_shed"`
	ReceiptsRejected  uint64 `json:"receipts_rejected"`
	ReceiptsStale     uint64 `json:"receipts_stale"`
	Watermark         int    `json:"watermark"`
	CustomersEvicted  uint64 `json:"customers_evicted"`
	CustomersRetained int    `json:"customers_retained"`
	FollowPolls       uint64 `json:"follow_polls"`
	FollowResyncs     uint64 `json:"follow_resyncs"`
}

func getJSON(base, path string, out any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// awaitDrain polls /metrics until every accepted receipt has been drained
// into the monitor (POSTs return at enqueue time, not drain time).
func awaitDrain(base string, want uint64) error {
	for tries := 0; tries < 6000; tries++ {
		var m metricsSnapshot
		if err := getJSON(base, "/metrics", &m); err != nil {
			return err
		}
		if m.ReceiptsIngested >= want {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("daemon never drained %d receipts", want)
}

// queryStabilities issues o.queries GET /v1/customers/{id}/stability calls
// round-robin over the customer ids, concurrently, measuring latency.
// 404s count as answers (customers can be unscored), other statuses fail.
func queryStabilities(base string, ids []stability.CustomerID, o options) (*hist, error) {
	if o.queries <= 0 || len(ids) == 0 {
		return &hist{}, nil
	}
	results, err := population.Map(o.conns, population.Options{Workers: o.conns}, func(w int) (*hist, error) {
		h := &hist{}
		for q := w; q < o.queries; q += o.conns {
			id := ids[q%len(ids)]
			t0 := now()
			resp, err := http.Get(fmt.Sprintf("%s/v1/customers/%d/stability", base, id))
			if err != nil {
				return nil, err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			h.observe(now().Sub(t0))
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
				return nil, fmt.Errorf("GET stability %d: status %d", id, resp.StatusCode)
			}
		}
		return h, nil
	})
	if err != nil {
		return nil, err
	}
	agg := &hist{}
	for _, h := range results {
		agg.merge(h)
	}
	return agg, nil
}

// wireAlert is the subset of an alert loadgen verifies.
type wireAlert struct {
	Seq       uint64  `json:"seq"`
	Customer  uint64  `json:"customer"`
	Window    int     `json:"window"`
	Stability float64 `json:"stability"`
}

// verify replays the feed through a local sequential Monitor under the
// daemon's watermark rule and cross-checks the daemon's counters, health,
// alert stream, and every customer's stability answer. The replay is
// deterministic, so every comparison is exact.
func verify(base string, feed []receipt, grid stability.Grid, ids []stability.CustomerID, o options, wantIngested uint64, out io.Writer) error {
	mon, err := stability.NewMonitor(stability.MonitorConfig{
		Grid:             grid,
		Model:            stability.Options{Alpha: o.alpha},
		Beta:             o.beta,
		TopJ:             o.topJ,
		WarmupWindows:    o.warmup,
		RetentionWindows: o.retention,
	})
	if err != nil {
		return err
	}
	type key struct {
		customer uint64
		window   int
	}
	var want []key
	wantStab := map[key]float64{}
	maxMonth := -1
	lastClosedK := -1
	var pending []stability.Alert
	emit := func(batch []stability.Alert) {
		sort.Slice(batch, func(i, j int) bool {
			if batch[i].GridIndex != batch[j].GridIndex {
				return batch[i].GridIndex < batch[j].GridIndex
			}
			return batch[i].Customer < batch[j].Customer
		})
		for _, a := range batch {
			k := key{uint64(a.Customer), a.GridIndex}
			want = append(want, k)
			wantStab[k] = a.Stability
		}
	}
	for _, rc := range feed {
		if m := grid.MonthIndex(rc.Time); m > maxMonth {
			maxMonth = m
			if closeK := grid.Index(grid.Origin().AddDate(0, m, 0)) - 1; closeK > lastClosedK {
				pending = append(pending, mon.CloseThrough(closeK)...)
				emit(pending)
				pending = nil
				lastClosedK = closeK
			}
		}
		items := make([]stability.ItemID, len(rc.Items))
		for i, it := range rc.Items {
			items[i] = stability.ItemID(it)
		}
		a, err := mon.Ingest(stability.CustomerID(rc.Customer), rc.Time, stability.NewBasket(items))
		if err != nil {
			return err
		}
		pending = append(pending, a...)
	}

	var m metricsSnapshot
	if err := getJSON(base, "/metrics", &m); err != nil {
		return err
	}
	if m.ReceiptsIngested != wantIngested || m.ReceiptsShed != 0 || m.ReceiptsRejected != 0 || m.ReceiptsStale != 0 {
		return fmt.Errorf("metrics: ingested=%d shed=%d rejected=%d stale=%d, want %d/0/0/0",
			m.ReceiptsIngested, m.ReceiptsShed, m.ReceiptsRejected, m.ReceiptsStale, wantIngested)
	}
	if m.Watermark != lastClosedK+1 {
		return fmt.Errorf("watermark %d, want %d", m.Watermark, lastClosedK+1)
	}
	// With a retention horizon the daemon evicts idle customers at close
	// barriers, deterministically — the sequential replay must agree on
	// both counts exactly.
	if m.CustomersEvicted != mon.Evicted() || m.CustomersRetained != mon.Customers() {
		return fmt.Errorf("eviction: daemon evicted=%d retained=%d, replay %d/%d",
			m.CustomersEvicted, m.CustomersRetained, mon.Evicted(), mon.Customers())
	}
	if o.retention > 0 {
		fmt.Fprintf(out, "eviction: %d customers evicted, %d retained, exact match\n",
			m.CustomersEvicted, m.CustomersRetained)
	}
	var h struct {
		Status    string `json:"status"`
		Customers int    `json:"customers"`
	}
	if err := getJSON(base, "/healthz", &h); err != nil {
		return err
	}
	if h.Status != "ok" || h.Customers != mon.Customers() {
		return fmt.Errorf("healthz: status=%q customers=%d, want ok/%d", h.Status, h.Customers, mon.Customers())
	}

	got, err := fetchAlerts(base)
	if err != nil {
		return err
	}
	if len(got) != len(want) {
		return fmt.Errorf("daemon delivered %d alerts, sequential replay raised %d", len(got), len(want))
	}
	for i, a := range got {
		k := key{a.Customer, a.Window}
		if a.Seq != uint64(i)+1 || k != want[i] || a.Stability != wantStab[k] {
			return fmt.Errorf("alert %d: got seq=%d customer=%d window=%d stability=%v, want %+v stability=%v",
				i, a.Seq, a.Customer, a.Window, a.Stability, want[i], wantStab[want[i]])
		}
	}
	fmt.Fprintf(out, "alert stream: %d alerts, exact match\n", len(got))

	checked := 0
	for _, id := range ids {
		wantV, wantK, wantOK := mon.Stability(id)
		var sr struct {
			Stability float64 `json:"stability"`
			Window    int     `json:"window"`
		}
		resp, err := http.Get(fmt.Sprintf("%s/v1/customers/%d/stability", base, id))
		if err != nil {
			return err
		}
		switch {
		case resp.StatusCode == http.StatusOK && wantOK:
			err := json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			if err != nil {
				return err
			}
			if sr.Stability != wantV || sr.Window != wantK {
				return fmt.Errorf("customer %d: daemon says %v@%d, replay says %v@%d",
					id, sr.Stability, sr.Window, wantV, wantK)
			}
			checked++
		case resp.StatusCode == http.StatusNotFound && !wantOK:
			resp.Body.Close()
		default:
			resp.Body.Close()
			return fmt.Errorf("customer %d: status %d, replay scored=%v", id, resp.StatusCode, wantOK)
		}
	}
	fmt.Fprintf(out, "stabilities: %d scored customers, exact match\n", checked)
	return nil
}

// fetchAlerts pages through GET /v1/alerts.
func fetchAlerts(base string) ([]wireAlert, error) {
	var out []wireAlert
	after := uint64(0)
	for {
		var page struct {
			Alerts []wireAlert `json:"alerts"`
			Next   uint64      `json:"next"`
		}
		if err := getJSON(base, fmt.Sprintf("/v1/alerts?after=%d&max=500", after), &page); err != nil {
			return nil, err
		}
		out = append(out, page.Alerts...)
		if len(page.Alerts) == 0 {
			return out, nil
		}
		after = page.Next
	}
}
