package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/gautrais/stability"
)

func TestRunGeneratesAllFormats(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-out", dir,
		"-customers", "30",
		"-seed", "3",
		"-months", "12",
		"-segments", "70",
		"-formats", "csv,jsonl,bin",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"receipts.csv", "receipts.jsonl", "receipts.stb", "labels.csv", "catalog.csv"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	// The three receipt formats decode to the same store.
	csvF, err := os.Open(filepath.Join(dir, "receipts.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer csvF.Close()
	fromCSV, _, err := stability.ReadReceiptsCSV(csvF, true)
	if err != nil {
		t.Fatal(err)
	}
	binF, err := os.Open(filepath.Join(dir, "receipts.stb"))
	if err != nil {
		t.Fatal(err)
	}
	defer binF.Close()
	fromBin, err := stability.ReadSnapshot(binF)
	if err != nil {
		t.Fatal(err)
	}
	if fromCSV.NumReceipts() != fromBin.NumReceipts() || fromCSV.NumCustomers() != fromBin.NumCustomers() {
		t.Fatalf("format mismatch: csv %d/%d vs bin %d/%d",
			fromCSV.NumCustomers(), fromCSV.NumReceipts(), fromBin.NumCustomers(), fromBin.NumReceipts())
	}
}

func TestRunRejectsUnknownFormat(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-customers", "5", "-formats", "parquet"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunDeterministicAcrossInvocations(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	args := []string{"-customers", "20", "-seed", "9", "-months", "8", "-formats", "csv"}
	if err := run(append([]string{"-out", dirA}, args...)); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-out", dirB}, args...)); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(dirA, "receipts.csv"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dirB, "receipts.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("same seed produced different CSV output")
	}
}
