package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gautrais/stability"
)

func TestRunGeneratesAllFormats(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-out", dir,
		"-customers", "30",
		"-seed", "3",
		"-months", "12",
		"-segments", "70",
		"-formats", "csv,jsonl,bin",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"receipts.csv", "receipts.jsonl", "receipts.stb", "labels.csv", "catalog.csv"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	// The three receipt formats decode to the same store.
	csvF, err := os.Open(filepath.Join(dir, "receipts.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer csvF.Close()
	fromCSV, _, err := stability.ReadReceiptsCSV(csvF, true)
	if err != nil {
		t.Fatal(err)
	}
	binF, err := os.Open(filepath.Join(dir, "receipts.stb"))
	if err != nil {
		t.Fatal(err)
	}
	defer binF.Close()
	fromBin, err := stability.ReadSnapshot(binF)
	if err != nil {
		t.Fatal(err)
	}
	if fromCSV.NumReceipts() != fromBin.NumReceipts() || fromCSV.NumCustomers() != fromBin.NumCustomers() {
		t.Fatalf("format mismatch: csv %d/%d vs bin %d/%d",
			fromCSV.NumCustomers(), fromCSV.NumReceipts(), fromBin.NumCustomers(), fromBin.NumReceipts())
	}
}

func TestRunRejectsUnknownFormat(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-customers", "5", "-formats", "parquet"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunDeterministicAcrossInvocations(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	args := []string{"-customers", "20", "-seed", "9", "-months", "8", "-formats", "csv"}
	if err := run(append([]string{"-out", dirA}, args...)); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-out", dirB}, args...)); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(dirA, "receipts.csv"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dirB, "receipts.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("same seed produced different CSV output")
	}
}

// TestRunExtendAllFormats pins datagen's incremental growth path: a base
// dataset in every format, extended in place with -extend, decodes to the
// same store as a one-shot generation of the longer horizon (the base's
// auto-adjusted onset passed explicitly so the configs agree).
func TestRunExtendAllFormats(t *testing.T) {
	grown, oneShot := t.TempDir(), t.TempDir()
	common := []string{"-customers", "25", "-seed", "6", "-segments", "60", "-formats", "csv,jsonl,bin"}
	// months=12 auto-adjusts the onset to 8; pin it so the 15-month
	// one-shot run uses the same generation config.
	if err := run(append([]string{"-out", grown, "-months", "12", "-onset", "8"}, common...)); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-out", grown, "-months", "12", "-onset", "8", "-extend", "3"}, common...)); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-out", oneShot, "-months", "15", "-onset", "8"}, common...)); err != nil {
		t.Fatal(err)
	}

	read := func(dir, name string) *stability.Store {
		t.Helper()
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		switch {
		case strings.HasSuffix(name, ".jsonl"):
			st, err := stability.ReadReceiptsJSONL(f)
			if err != nil {
				t.Fatal(err)
			}
			return st
		case strings.HasSuffix(name, ".stb"):
			st, err := stability.ReadSnapshot(f)
			if err != nil {
				t.Fatal(err)
			}
			return st
		default:
			st, _, err := stability.ReadReceiptsCSV(f, true)
			if err != nil {
				t.Fatal(err)
			}
			return st
		}
	}
	for _, name := range []string{"receipts.csv", "receipts.jsonl", "receipts.stb"} {
		var a, b bytes.Buffer
		if err := stability.WriteSnapshot(&a, read(grown, name)); err != nil {
			t.Fatal(err)
		}
		if err := stability.WriteSnapshot(&b, read(oneShot, name)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s: extended-in-place file decodes differently from one-shot generation", name)
		}
	}
	// Labels over the grown dataset must match the one-shot run's.
	gl, err := os.ReadFile(filepath.Join(grown, "labels.csv"))
	if err != nil {
		t.Fatal(err)
	}
	ol, err := os.ReadFile(filepath.Join(oneShot, "labels.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gl, ol) {
		t.Fatal("labels differ between grown and one-shot datasets")
	}
}

// TestRunExtendNeedsBaseFiles pins the error path: -extend without the
// base files in place fails loudly instead of writing from scratch.
func TestRunExtendNeedsBaseFiles(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-customers", "10", "-months", "12", "-extend", "2", "-formats", "csv"}); err == nil {
		t.Fatal("-extend into an empty directory accepted")
	}
}

// TestRunExtendRerunAndMismatch pins the verification path: re-running the
// same -extend command chains (the base fast-forwards to the files'
// current length — months append, receipts never duplicate), and a
// mismatched seed is rejected before a single byte is appended.
func TestRunExtendRerunAndMismatch(t *testing.T) {
	dir := t.TempDir()
	common := []string{"-out", dir, "-customers", "15", "-seed", "5", "-months", "12", "-onset", "8", "-formats", "csv"}
	if err := run(common); err != nil {
		t.Fatal(err)
	}
	if err := run(append(common, "-extend", "3")); err != nil {
		t.Fatal(err)
	}
	// Same command again: chains to 18 months, no duplicated receipts.
	if err := run(append(common, "-extend", "3")); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "receipts.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, _, err := stability.ReadReceiptsCSV(f, true)
	if err != nil {
		t.Fatal(err)
	}
	oneShot := t.TempDir()
	if err := run([]string{"-out", oneShot, "-customers", "15", "-seed", "5", "-months", "18", "-onset", "8", "-formats", "csv"}); err != nil {
		t.Fatal(err)
	}
	of, err := os.Open(filepath.Join(oneShot, "receipts.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer of.Close()
	want, _, err := stability.ReadReceiptsCSV(of, true)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := stability.WriteSnapshot(&a, got); err != nil {
		t.Fatal(err)
	}
	if err := stability.WriteSnapshot(&b, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("double -extend 3 differs from a one-shot 18-month generation (duplicate or missing receipts)")
	}
	// Wrong seed must be rejected, file untouched.
	before, err := os.ReadFile(filepath.Join(dir, "receipts.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-out", dir, "-customers", "15", "-seed", "6", "-months", "12", "-onset", "8", "-formats", "csv", "-extend", "3"}); err == nil {
		t.Fatal("-extend with a mismatched seed accepted")
	}
	after, err := os.ReadFile(filepath.Join(dir, "receipts.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("rejected -extend still modified the file")
	}
}
