// Command datagen generates synthetic retail-transaction datasets in every
// supported format, for use outside this repository (plotting, other
// implementations, benchmarks).
//
// Usage:
//
//	datagen -out DIR [-customers N] [-seed S] [-months M] [-segments K] \
//	        [-formats csv,jsonl,bin] [-workers W]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/gautrais/stability"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		outDir    = fs.String("out", "dataset", "output directory")
		customers = fs.Int("customers", 0, "population size (0 = default)")
		seed      = fs.Int64("seed", 0, "dataset seed (0 = default)")
		months    = fs.Int("months", 0, "dataset length in months (0 = default)")
		onset     = fs.Int("onset", 0, "attrition onset month (0 = default/auto)")
		segments  = fs.Int("segments", 0, "catalog segments (0 = default)")
		formats   = fs.String("formats", "csv", "comma-separated: csv,jsonl,bin")
		workers   = fs.Int("workers", 0, "generation worker pool size (0 = all CPUs; output is identical for any value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := stability.DefaultSampleConfig()
	if *customers > 0 {
		cfg.Customers = *customers
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *months > 0 {
		cfg.Months = *months
		if *onset == 0 && cfg.OnsetMonth >= cfg.Months {
			// Shortened horizon: keep the onset at two thirds of it, like
			// the paper's 18-of-28.
			cfg.OnsetMonth = cfg.Months * 2 / 3
			if cfg.OnsetMonth < 1 {
				cfg.OnsetMonth = 1
			}
		}
	}
	if *onset > 0 {
		cfg.OnsetMonth = *onset
	}
	if *segments > 0 {
		cfg.Segments = *segments
	}
	ds, err := stability.GenerateSampleWith(cfg, stability.SampleOptions{Workers: *workers})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	write := func(name string, fn func(*os.File) error) error {
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, info.Size())
		return nil
	}

	for _, format := range strings.Split(*formats, ",") {
		switch strings.TrimSpace(format) {
		case "csv":
			if err := write("receipts.csv", func(f *os.File) error {
				return stability.WriteReceiptsCSV(f, ds.Store)
			}); err != nil {
				return err
			}
		case "jsonl":
			if err := write("receipts.jsonl", func(f *os.File) error {
				return stability.WriteReceiptsJSONL(f, ds.Store)
			}); err != nil {
				return err
			}
		case "bin":
			if err := write("receipts.stb", func(f *os.File) error {
				return stability.WriteSnapshot(f, ds.Store)
			}); err != nil {
				return err
			}
		case "":
		default:
			return fmt.Errorf("unknown format %q", format)
		}
	}
	if err := write("labels.csv", func(f *os.File) error {
		return stability.WriteLabelsCSV(f, ds.Truth.Labels())
	}); err != nil {
		return err
	}
	if err := write("catalog.csv", func(f *os.File) error {
		return stability.WriteCatalogCSV(f, ds.Catalog)
	}); err != nil {
		return err
	}
	fmt.Printf("dataset: %d customers, %d receipts, %d segments, %d months\n",
		ds.Store.NumCustomers(), ds.Store.NumReceipts(), cfg.Segments, cfg.Months)
	return nil
}
