// Command datagen generates synthetic retail-transaction datasets in every
// supported format, for use outside this repository (plotting, other
// implementations, benchmarks).
//
// Usage:
//
//	datagen -out DIR [-customers N] [-seed S] [-months M] [-segments K] \
//	        [-formats csv,jsonl,bin] [-workers W]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/gautrais/stability"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		outDir    = fs.String("out", "dataset", "output directory")
		customers = fs.Int("customers", 0, "population size (0 = default)")
		seed      = fs.Int64("seed", 0, "dataset seed (0 = default)")
		months    = fs.Int("months", 0, "dataset length in months (0 = default); with -extend, the length of the existing base dataset")
		onset     = fs.Int("onset", 0, "attrition onset month (0 = default/auto)")
		segments  = fs.Int("segments", 0, "catalog segments (0 = default)")
		formats   = fs.String("formats", "csv", "comma-separated: csv,jsonl,bin")
		extend    = fs.Int("extend", 0, "append N months to the existing dataset in -out: the base is regenerated from the same flags, the simulation resumes past its horizon, and only the new receipts are appended to each format file")
		workers   = fs.Int("workers", 0, "generation worker pool size (0 = all CPUs; output is identical for any value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := stability.DefaultSampleConfig()
	if *customers > 0 {
		cfg.Customers = *customers
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *months > 0 {
		cfg.Months = *months
		if *onset == 0 && cfg.OnsetMonth >= cfg.Months {
			// Shortened horizon: keep the onset at two thirds of it, like
			// the paper's 18-of-28.
			cfg.OnsetMonth = cfg.Months * 2 / 3
			if cfg.OnsetMonth < 1 {
				cfg.OnsetMonth = 1
			}
		}
	}
	if *onset > 0 {
		cfg.OnsetMonth = *onset
	}
	if *segments > 0 {
		cfg.Segments = *segments
	}
	// wanted resolves the -formats list against the shared codec table,
	// deduplicated: a repeated name must not write (or, worse, delta-append)
	// the same file twice.
	var wanted []stability.ReceiptFormat
	seen := make(map[string]bool)
	for _, format := range strings.Split(*formats, ",") {
		name := strings.TrimSpace(format)
		if name == "" || seen[name] {
			continue
		}
		sf, ok := stability.ReceiptFormatNamed(name)
		if !ok {
			return fmt.Errorf("unknown format %q", name)
		}
		seen[name] = true
		wanted = append(wanted, sf)
	}

	ds, err := stability.GenerateSampleWith(cfg, stability.SampleOptions{Workers: *workers})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	var prev *stability.Store
	if *extend > 0 {
		if len(wanted) == 0 {
			return fmt.Errorf("-extend needs at least one format")
		}
		// Verify every requested file really is the dataset these flags
		// regenerate before appending a single byte: GrowSample
		// fast-forwards the base to the files' current length and checks
		// population, receipt count and time range. Re-running the same
		// -extend command is therefore a no-op-safe error (the files are
		// already longer than base+extend would allow duplicating), and a
		// wrong -seed/-months is rejected instead of corrupting the files.
		stores := make([]*stability.Store, len(wanted))
		for i, sf := range wanted {
			path := filepath.Join(*outDir, sf.File)
			f, err := os.Open(path)
			if err != nil {
				return fmt.Errorf("%s: -extend needs the base file to append to: %w", sf.File, err)
			}
			st, err := sf.Read(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", sf.File, err)
			}
			stores[i] = st
			if st.NumReceipts() != stores[0].NumReceipts() || st.NumCustomers() != stores[0].NumCustomers() {
				return fmt.Errorf("%s and %s disagree (%d/%d vs %d/%d receipts/customers) — extend them from a consistent state",
					wanted[0].File, sf.File, stores[0].NumReceipts(), stores[0].NumCustomers(), st.NumReceipts(), st.NumCustomers())
			}
			// CSV stores whole seconds while JSONL keeps nanoseconds, so
			// compare the ranges at the coarsest codec resolution.
			aMin, aMax, aOK := stores[0].TimeRange()
			bMin, bMax, bOK := st.TimeRange()
			if aOK != bOK || (aOK && (!aMin.Truncate(time.Second).Equal(bMin.Truncate(time.Second)) ||
				!aMax.Truncate(time.Second).Equal(bMax.Truncate(time.Second)))) {
				return fmt.Errorf("%s and %s disagree on the covered time range — extend them from a consistent state",
					wanted[0].File, sf.File)
			}
		}
		prev, err = stability.GrowSample(ds, stores[0], *extend, stability.SampleOptions{Workers: *workers})
		if err != nil {
			return fmt.Errorf("-extend: %s: %w", wanted[0].File, err)
		}
	}

	appendDelta := func(name string, fn func(*os.File) error) error {
		path := filepath.Join(*outDir, name)
		before, err := os.Stat(path)
		if err != nil {
			return err
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			return err
		}
		// A failed append (disk full, codec error) restores the original
		// size, so the file never keeps a half-written trailing segment.
		if err := fn(f); err != nil {
			f.Close()
			os.Truncate(path, before.Size())
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			os.Truncate(path, before.Size())
			return err
		}
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("extended %s (now %d bytes)\n", path, info.Size())
		return nil
	}

	write := func(name string, fn func(*os.File) error) error {
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, info.Size())
		return nil
	}

	for _, sf := range wanted {
		if prev != nil {
			err = appendDelta(sf.File, func(f *os.File) error { return sf.WriteDelta(f, ds.Store, prev) })
		} else {
			err = write(sf.File, func(f *os.File) error { return sf.Write(f, ds.Store) })
		}
		if err != nil {
			return err
		}
	}
	if err := write("labels.csv", func(f *os.File) error {
		return stability.WriteLabelsCSV(f, ds.Truth.Labels())
	}); err != nil {
		return err
	}
	if err := write("catalog.csv", func(f *os.File) error {
		return stability.WriteCatalogCSV(f, ds.Catalog)
	}); err != nil {
		return err
	}
	fmt.Printf("dataset: %d customers, %d receipts, %d segments, %d months\n",
		ds.Store.NumCustomers(), ds.Store.NumReceipts(), ds.Config.Segments, ds.Config.Months)
	return nil
}
