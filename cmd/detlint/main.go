// Command detlint statically enforces the repository's determinism
// contract: every score and rendered byte must be a bit-exact function
// of the input stream. It loads every non-test package in the module
// with go/parser + go/types (stdlib only, no x/tools) and reports
// contract violations with file:line:col diagnostics, exiting non-zero
// when any unsuppressed finding remains — `make lint` runs it over the
// whole module on every build and in CI.
//
// Usage:
//
//	detlint [-json] [-rules R1,R2] [-disable R3] [-C dir] [packages]
//
// Packages default to ./... (the whole module). Rules:
//
//	R1 map-range        for…range over a map in scoring/output packages
//	R2 wallclock-rand   time.Now / global math/rand outside internal/stats
//	R3 raw-goroutine    go statements / sync.WaitGroup outside population, stream
//	R4 float-map-accum  float accumulation inside a map-range body
//	R5 exit-in-library  os.Exit / log.Fatal outside package main
//
// A finding is suppressed only by an explicit annotated comment on the
// flagged line or the line above:
//
//	//detlint:ignore R2 wall-clock timing is stderr telemetry, never output
//
// A bare or reasonless ignore is itself a diagnostic (R0, never
// disableable). -json emits the findings as a machine-readable report
// for CI artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/gautrais/stability/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the -json output shape. Findings is never null so
// downstream tooling can index it unconditionally.
type jsonReport struct {
	Findings []lint.Finding `json:"findings"`
	Count    int            `json:"count"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as JSON (for CI artifacts)")
		rulesF  = fs.String("rules", "", "comma-separated rule IDs to enable (default: all)")
		disable = fs.String("disable", "", "comma-separated rule IDs to disable")
		chdir   = fs.String("C", ".", "directory to resolve the module from")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: detlint [-json] [-rules R1,R2] [-disable R3] [-C dir] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	root, err := findModuleRoot(*chdir)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	selected, err := selectRules(*rulesF, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}

	patterns := fs.Args()
	findings, err := lint.Run(lint.Config{Dir: root, Rules: selected}, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}

	if *jsonOut {
		report := jsonReport{Findings: findings, Count: len(findings)}
		if report.Findings == nil {
			report.Findings = []lint.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "detlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "detlint: %d determinism-contract violation(s)\n", len(findings))
		return 1
	}
	return 0
}

// selectRules resolves the -rules / -disable flags into the enabled
// set. Empty means all rules; R0 (suppression hygiene) is implicit and
// cannot be turned off.
func selectRules(enable, disable string) ([]string, error) {
	all := []string{"R1", "R2", "R3", "R4", "R5"}
	selected := all
	if enable != "" {
		selected = splitIDs(enable)
	}
	if disable == "" {
		return selected, nil
	}
	off := make(map[string]bool)
	for _, id := range splitIDs(disable) {
		off[id] = true
	}
	var kept []string
	for _, id := range selected {
		if !off[id] {
			kept = append(kept, id)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("every rule disabled; nothing to do")
	}
	return kept, nil
}

func splitIDs(s string) []string {
	var out []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}
