package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// fixture points the CLI at one of the lint package's fixture modules.
func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "lint", "testdata", "src", name)
}

func TestRunReportsViolations(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixture("maprange")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("want exit 1 on findings, got %d (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "R1") {
		t.Fatalf("stdout missing R1 diagnostics:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "violation") {
		t.Fatalf("stderr missing summary:\n%s", stderr.String())
	}
}

func TestRunJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixture("wallclock"), "-json"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
	var report jsonReport
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if report.Count == 0 || report.Count != len(report.Findings) {
		t.Fatalf("inconsistent report: count=%d findings=%d", report.Count, len(report.Findings))
	}
	for _, f := range report.Findings {
		if f.Rule != "R2" {
			t.Fatalf("wallclock fixture should only trip R2, got %s", f.Rule)
		}
		if f.File == "" || f.Line == 0 || f.Message == "" {
			t.Fatalf("incomplete finding: %+v", f)
		}
	}
}

func TestRunJSONCleanEmitsEmptyFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixture("wallclock"), "-json", "-disable", "R2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("want exit 0 with R2 disabled, got %d (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, `"findings": []`) {
		t.Fatalf("clean JSON report should carry an empty findings array, got:\n%s", out)
	}
}

func TestRunRuleSelection(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", fixture("maprange"), "-rules", "R2,R3"}, &stdout, &stderr); code != 0 {
		t.Fatalf("maprange fixture should be clean under R2,R3; got exit %d:\n%s", code, stdout.String())
	}
	if code := run([]string{"-C", fixture("maprange"), "-rules", "R9"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown rule should exit 2, got %d", code)
	}
	if code := run([]string{"-C", fixture("maprange"), "-disable", "R1,R2,R3,R4,R5"}, &stdout, &stderr); code != 2 {
		t.Fatalf("disabling every rule should exit 2, got %d", code)
	}
}

func TestRunPatternArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixture("maprange"), "./internal/util"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("util package is out of R1 scope, want exit 0, got %d:\n%s", code, stdout.String())
	}
}

func TestRunNoModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", t.TempDir()}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing go.mod should exit 2, got %d", code)
	}
}
