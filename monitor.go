package stability

import (
	"io"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/segments"
	"github.com/gautrais/stability/internal/stream"
	"github.com/gautrais/stability/internal/window"
)

// Streaming monitoring types, re-exported. The monitor ingests receipts
// one at a time, rolls windows over automatically, and emits alerts with
// blamed products whenever a customer's stability crosses the loyalty
// threshold β. It is equivalent (property-tested) to the batch pipeline.
type (
	// MonitorConfig parameterizes a Monitor.
	MonitorConfig = stream.Config
	// Monitor is the online attrition monitor (single-threaded).
	Monitor = stream.Monitor
	// ShardedMonitor is the parallel ingestion engine: receipts fan out
	// across customer-hash shards, alerts come back at Flush/CloseThrough
	// barriers in a deterministic order identical for every shard count.
	ShardedMonitor = stream.ShardedMonitor
	// Alert is one detection event with blamed products.
	Alert = stream.Alert
	// ScoredWindow is one closed window's result.
	ScoredWindow = stream.Scored
)

// MonitorOptions tune a sharded monitor's operational knobs. Like
// PopulationOptions, they affect throughput only — never results or
// snapshot bytes.
type MonitorOptions struct {
	// Shards is the number of single-threaded shard monitors the feed is
	// hash-partitioned across; <= 0 means GOMAXPROCS.
	Shards int
}

// NewMonitor validates cfg and returns an empty monitor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) { return stream.New(cfg) }

// NewShardedMonitor validates cfg and returns a running sharded monitor:
//
//	monitor, _ := stability.NewShardedMonitor(cfg, stability.MonitorOptions{Shards: 8})
//	_ = monitor.Ingest(id, t, items)            // safe from many producers
//	alerts, err := monitor.CloseThrough(k)      // barrier: deterministic batch
//
// Per-customer receipt order is preserved, and alerts/snapshots are
// byte-identical to the single-threaded Monitor's for any shard count.
func NewShardedMonitor(cfg MonitorConfig, opts MonitorOptions) (*ShardedMonitor, error) {
	return stream.NewSharded(cfg, opts.Shards)
}

// ReadMonitorSnapshot restores a monitor persisted with
// Monitor.WriteSnapshot or ShardedMonitor.WriteSnapshot (the formats are
// identical). cfg supplies the operational knobs (β, TopJ, warm-up); its
// grid and model options must match the snapshot's.
func ReadMonitorSnapshot(r io.Reader, cfg MonitorConfig) (*Monitor, error) {
	return stream.ReadMonitorSnapshot(r, cfg)
}

// ReadShardedMonitorSnapshot restores any monitor snapshot into a sharded
// monitor. Shard count is an operational knob, not persisted state: a
// snapshot written with S shards restores with any S'.
func ReadShardedMonitorSnapshot(r io.Reader, cfg MonitorConfig, opts MonitorOptions) (*ShardedMonitor, error) {
	return stream.ReadShardedMonitorSnapshot(r, cfg, opts.Shards)
}

// ReadTrackerSnapshot restores a single customer's tracker persisted with
// Tracker.WriteSnapshot.
func ReadTrackerSnapshot(r io.Reader) (*Tracker, error) {
	return core.ReadTrackerSnapshot(r)
}

// Segment-characterization types, re-exported (the paper's future work:
// which products' losses explain defection, population-wide).
type (
	// SegmentStats aggregates one segment's role in population attrition.
	SegmentStats = segments.Stats
	// SegmentReport is the population-level characterization.
	SegmentReport = segments.Report
	// CharacterizeOptions tune the aggregation.
	CharacterizeOptions = segments.Options
)

// DefaultCharacterizeOptions returns the standard aggregation setting.
func DefaultCharacterizeOptions() CharacterizeOptions { return segments.DefaultOptions() }

// Characterize aggregates the model's explanations over a population into
// per-segment attrition statistics (gateway products).
func Characterize(model *core.Model, histories []retail.History, grid window.Grid, through int, opts CharacterizeOptions) (*SegmentReport, error) {
	return segments.Characterize(model, histories, grid, through, opts)
}
