package stability

import (
	"io"

	"github.com/gautrais/stability/internal/core"
	"github.com/gautrais/stability/internal/retail"
	"github.com/gautrais/stability/internal/segments"
	"github.com/gautrais/stability/internal/stream"
	"github.com/gautrais/stability/internal/window"
)

// Streaming monitoring types, re-exported. The monitor ingests receipts
// one at a time, rolls windows over automatically, and emits alerts with
// blamed products whenever a customer's stability crosses the loyalty
// threshold β. It is equivalent (property-tested) to the batch pipeline.
type (
	// MonitorConfig parameterizes a Monitor.
	MonitorConfig = stream.Config
	// Monitor is the online attrition monitor.
	Monitor = stream.Monitor
	// Alert is one detection event with blamed products.
	Alert = stream.Alert
	// ScoredWindow is one closed window's result.
	ScoredWindow = stream.Scored
)

// NewMonitor validates cfg and returns an empty monitor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) { return stream.New(cfg) }

// ReadMonitorSnapshot restores a monitor persisted with
// Monitor.WriteSnapshot. cfg supplies the operational knobs (β, TopJ,
// warm-up); its grid and model options must match the snapshot's.
func ReadMonitorSnapshot(r io.Reader, cfg MonitorConfig) (*Monitor, error) {
	return stream.ReadMonitorSnapshot(r, cfg)
}

// ReadTrackerSnapshot restores a single customer's tracker persisted with
// Tracker.WriteSnapshot.
func ReadTrackerSnapshot(r io.Reader) (*Tracker, error) {
	return core.ReadTrackerSnapshot(r)
}

// Segment-characterization types, re-exported (the paper's future work:
// which products' losses explain defection, population-wide).
type (
	// SegmentStats aggregates one segment's role in population attrition.
	SegmentStats = segments.Stats
	// SegmentReport is the population-level characterization.
	SegmentReport = segments.Report
	// CharacterizeOptions tune the aggregation.
	CharacterizeOptions = segments.Options
)

// DefaultCharacterizeOptions returns the standard aggregation setting.
func DefaultCharacterizeOptions() CharacterizeOptions { return segments.DefaultOptions() }

// Characterize aggregates the model's explanations over a population into
// per-segment attrition statistics (gateway products).
func Characterize(model *core.Model, histories []retail.History, grid window.Grid, through int, opts CharacterizeOptions) (*SegmentReport, error) {
	return segments.Characterize(model, histories, grid, through, opts)
}
