package stability

import (
	"io"

	"github.com/gautrais/stability/internal/serve"
	"github.com/gautrais/stability/internal/stream"
)

// Serving types, re-exported: attrition-as-a-service. A Server wraps the
// sharded streaming monitor with bounded batched ingestion, per-customer
// stability queries, alert delivery (long-poll and SSE), health checks
// and metrics — the attritiond daemon (cmd/attritiond) is a thin shell
// around NewServer. API.md documents the HTTP surface; DESIGN.md
// "attritiond serving architecture" the internals.
type (
	// Server is the attrition-as-a-service HTTP engine.
	Server = serve.Server
	// ServerConfig parameterizes a Server (monitor config, shard count,
	// ingestion queue bound and overflow policy, persistence).
	ServerConfig = serve.Config
	// IngestPolicy selects the bounded ingestion queue's overflow
	// behavior: block producers, shed batches, or reject with
	// ErrQueueFull (HTTP 429).
	IngestPolicy = stream.OverflowPolicy
	// Ingestor is the serving-path feed: a bounded, policy-governed batch
	// queue in front of a ShardedMonitor, with a sequence-numbered alert
	// log for streaming consumers.
	Ingestor = stream.Ingestor
	// IngestorConfig parameterizes a standalone Ingestor.
	IngestorConfig = stream.IngestorConfig
	// IngestorMetrics is a snapshot of an Ingestor's counters.
	IngestorMetrics = stream.IngestorMetrics
	// ReceiptEvent is one receipt offered to an Ingestor.
	ReceiptEvent = stream.ReceiptEvent
	// SeqAlert is an Alert stamped with its delivery-log sequence.
	SeqAlert = stream.SeqAlert
	// CustomerStability is one row of a batch stability query
	// (Monitor/ShardedMonitor/Ingestor Stabilities): what the single
	// Stability call would return for Customer, with OK false when the
	// customer is unknown or not yet scored.
	CustomerStability = stream.CustomerStability
)

// Ingestion queue overflow policies.
const (
	// IngestBlock blocks producers until queue space frees up (lossless).
	IngestBlock = stream.PolicyBlock
	// IngestShed drops overflowing batches and counts them.
	IngestShed = stream.PolicyShed
	// IngestReject refuses overflowing batches with ErrQueueFull; the
	// HTTP layer answers 429 with a Retry-After header.
	IngestReject = stream.PolicyReject
)

// ErrQueueFull is returned by Ingestor.Enqueue under IngestReject when
// the ingestion queue is full.
var ErrQueueFull = stream.ErrQueueFull

// ParseIngestPolicy parses a policy's flag spelling: "block", "shed" or
// "reject".
func ParseIngestPolicy(s string) (IngestPolicy, error) { return stream.ParseOverflowPolicy(s) }

// NewServer validates cfg, restores SMN1 state from cfg.StatePath when the
// file exists, and returns a serving-ready attrition server:
//
//	srv, _ := stability.NewServer(stability.ServerConfig{Monitor: cfg})
//	defer srv.Close()                       // drain + persist
//	http.ListenAndServe(":8080", srv.Handler())
//
// The handler serves POST /v1/receipts (batched, bounded, backpressured),
// GET /v1/customers/{id}/stability, GET /v1/alerts (long-poll and SSE),
// GET /healthz and GET /metrics. Alerts and snapshots are byte-identical
// to a sequential Monitor replay of the accepted receipts at every shard
// count and under every ingestion policy (differential-tested).
func NewServer(cfg ServerConfig) (*Server, error) { return serve.New(cfg) }

// NewIngestor builds the queue→monitor pipeline without the HTTP layer,
// for embedding the serving path in other processes.
func NewIngestor(cfg IngestorConfig) (*Ingestor, error) { return stream.NewIngestor(cfg) }

// EncodeAlerts writes alerts as newline-delimited JSON in the exact wire
// form GET /v1/alerts delivers — the serving-path counterpart of comparing
// Alert slices, used by the differential tests.
func EncodeAlerts(w io.Writer, alerts []SeqAlert) error { return serve.EncodeAlerts(w, alerts) }
