package stability

import (
	"fmt"
	"time"

	"github.com/gautrais/stability/internal/gen"
)

// Synthetic-data types, re-exported for examples, tests and downstream
// experimentation. The generator substitutes for the paper's proprietary
// dataset; see DESIGN.md for the substitution rationale.
type (
	// SampleConfig parameterizes synthetic dataset generation.
	SampleConfig = gen.Config
	// SampleDataset bundles a generated store, catalog and ground truth.
	SampleDataset = gen.Dataset
	// GroundTruth indexes per-customer cohort labels and drop events.
	GroundTruth = gen.GroundTruth
	// CustomerTruth is one customer's ground-truth record.
	CustomerTruth = gen.CustomerTruth
	// SampleDropEvent is a ground-truth segment loss.
	SampleDropEvent = gen.DropEvent
	// Scenario is a scripted single-customer dataset (the paper's
	// Figure-2 use case).
	Scenario = gen.Scenario
	// ScenarioConfig parameterizes the scripted use case.
	ScenarioConfig = gen.Figure2Config
)

// SampleOptions tunes how sample generation executes (worker-pool size);
// it never affects the generated data.
type SampleOptions = gen.Options

// DefaultSampleConfig returns the default synthetic-dataset configuration:
// the paper's 28-month timeline with attrition onset at month 18, at
// laptop scale.
func DefaultSampleConfig() SampleConfig { return gen.NewConfig() }

// GenerateSample synthesizes a labelled retail dataset on all CPUs.
// Deterministic in cfg.Seed.
func GenerateSample(cfg SampleConfig) (*SampleDataset, error) { return gen.Generate(cfg) }

// GenerateSampleWith is GenerateSample with an explicit worker count. The
// dataset is bit-identical at every worker count.
func GenerateSampleWith(cfg SampleConfig, opts SampleOptions) (*SampleDataset, error) {
	return gen.GenerateWith(cfg, opts)
}

// ExtendSample appends months to a generated dataset by resuming every
// customer's simulation from its checkpoint — the past is never
// re-simulated, and the result is bit-identical (store bytes, truth
// records, downstream evaluation) to generating the longer horizon from
// scratch, at any worker count. Only datasets produced by
// GenerateSample/GenerateSampleWith are resumable; datasets loaded from
// files return gen.ErrNotResumable (regenerate the base from its config
// instead — generation is deterministic in the seed).
func ExtendSample(ds *SampleDataset, months int, opts SampleOptions) error {
	return gen.Extend(ds, months, opts)
}

// GrowSample extends a regenerated base dataset past an on-disk copy:
// it fast-forwards ds to onDisk's horizon (extension is bit-identical to
// regeneration, so a previously-extended file is reachable from its base
// config), verifies the file actually is that dataset — population,
// receipt count and time range, compared at the codecs' whole-second
// resolution — and then extends by the requested months. It returns the
// pre-extension store, the baseline for writing a file delta
// (WriteReceiptsCSVDelta and friends). A verification failure means the
// file was produced with different generation parameters (or edited) and
// appending to it would corrupt it.
func GrowSample(ds *SampleDataset, onDisk *Store, months int, opts SampleOptions) (prev *Store, err error) {
	if _, dMax, ok := onDisk.TimeRange(); ok {
		start := ds.Config.Start
		have := (dMax.Year()-start.Year())*12 + int(dMax.Month()) - int(start.Month()) + 1
		if have > ds.Config.Months {
			if err := ExtendSample(ds, have-ds.Config.Months, opts); err != nil {
				return nil, err
			}
		}
	}
	if onDisk.NumCustomers() != ds.Store.NumCustomers() || onDisk.NumReceipts() != ds.Store.NumReceipts() {
		return nil, fmt.Errorf("stability: existing dataset holds %d customers / %d receipts but the base flags regenerate %d / %d — different seed/customers/months?",
			onDisk.NumCustomers(), onDisk.NumReceipts(), ds.Store.NumCustomers(), ds.Store.NumReceipts())
	}
	dMin, dMax, dOK := onDisk.TimeRange()
	bMin, bMax, bOK := ds.Store.TimeRange()
	if dOK != bOK || (dOK && (!dMin.Equal(bMin.Truncate(time.Second)) || !dMax.Equal(bMax.Truncate(time.Second)))) {
		return nil, fmt.Errorf("stability: existing dataset covers %v..%v but the base flags regenerate %v..%v — generation parameter mismatch",
			dMin, dMax, bMin, bMax)
	}
	prev = ds.Store
	if err := ExtendSample(ds, months, opts); err != nil {
		return nil, err
	}
	return prev, nil
}

// DefaultScenarioConfig returns the paper's Figure-2 use case: a loyal
// customer who stops buying coffee, then milk, sponge and cheese.
func DefaultScenarioConfig() ScenarioConfig { return gen.DefaultFigure2Config() }

// GenerateScenario builds the scripted single-customer dataset.
func GenerateScenario(cfg ScenarioConfig) (*Scenario, error) { return gen.Figure2Scenario(cfg) }
