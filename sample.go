package stability

import (
	"github.com/gautrais/stability/internal/gen"
)

// Synthetic-data types, re-exported for examples, tests and downstream
// experimentation. The generator substitutes for the paper's proprietary
// dataset; see DESIGN.md for the substitution rationale.
type (
	// SampleConfig parameterizes synthetic dataset generation.
	SampleConfig = gen.Config
	// SampleDataset bundles a generated store, catalog and ground truth.
	SampleDataset = gen.Dataset
	// GroundTruth indexes per-customer cohort labels and drop events.
	GroundTruth = gen.GroundTruth
	// CustomerTruth is one customer's ground-truth record.
	CustomerTruth = gen.CustomerTruth
	// SampleDropEvent is a ground-truth segment loss.
	SampleDropEvent = gen.DropEvent
	// Scenario is a scripted single-customer dataset (the paper's
	// Figure-2 use case).
	Scenario = gen.Scenario
	// ScenarioConfig parameterizes the scripted use case.
	ScenarioConfig = gen.Figure2Config
)

// SampleOptions tunes how sample generation executes (worker-pool size);
// it never affects the generated data.
type SampleOptions = gen.Options

// DefaultSampleConfig returns the default synthetic-dataset configuration:
// the paper's 28-month timeline with attrition onset at month 18, at
// laptop scale.
func DefaultSampleConfig() SampleConfig { return gen.NewConfig() }

// GenerateSample synthesizes a labelled retail dataset on all CPUs.
// Deterministic in cfg.Seed.
func GenerateSample(cfg SampleConfig) (*SampleDataset, error) { return gen.Generate(cfg) }

// GenerateSampleWith is GenerateSample with an explicit worker count. The
// dataset is bit-identical at every worker count.
func GenerateSampleWith(cfg SampleConfig, opts SampleOptions) (*SampleDataset, error) {
	return gen.GenerateWith(cfg, opts)
}

// DefaultScenarioConfig returns the paper's Figure-2 use case: a loyal
// customer who stops buying coffee, then milk, sponge and cheese.
func DefaultScenarioConfig() ScenarioConfig { return gen.DefaultFigure2Config() }

// GenerateScenario builds the scripted single-customer dataset.
func GenerateScenario(cfg ScenarioConfig) (*Scenario, error) { return gen.Figure2Scenario(cfg) }
